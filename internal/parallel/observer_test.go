package parallel

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"eventcap/internal/obs"
)

// countingObserver records lifecycle callbacks for assertions.
type countingObserver struct {
	enqueued, started, finished, failed atomic.Int64
	busy                                atomic.Int64
}

func (o *countingObserver) Enqueued(n int) { o.enqueued.Add(int64(n)) }
func (o *countingObserver) Started()       { o.started.Add(1) }
func (o *countingObserver) Finished(d time.Duration, err error) {
	o.busy.Add(int64(d))
	if err != nil {
		o.failed.Add(1)
	}
	o.finished.Add(1)
}

func TestObserverSeesEveryJob(t *testing.T) {
	for _, workers := range []int{1, 4} {
		o := &countingObserver{}
		SetObserver(o)
		if _, err := Map(workers, 25, func(i int) (int, error) {
			time.Sleep(time.Microsecond)
			return i, nil
		}); err != nil {
			t.Fatal(err)
		}
		SetObserver(nil)
		if o.enqueued.Load() != 25 || o.started.Load() != 25 || o.finished.Load() != 25 {
			t.Fatalf("workers=%d: enqueued/started/finished = %d/%d/%d, want 25 each",
				workers, o.enqueued.Load(), o.started.Load(), o.finished.Load())
		}
		if o.failed.Load() != 0 {
			t.Fatalf("workers=%d: %d failures reported", workers, o.failed.Load())
		}
		if o.busy.Load() <= 0 {
			t.Fatalf("workers=%d: no busy time recorded", workers)
		}
	}
}

func TestObserverSeesErrors(t *testing.T) {
	o := &countingObserver{}
	SetObserver(o)
	defer SetObserver(nil)
	_, err := Map(2, 40, func(i int) (int, error) {
		if i == 0 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if o.enqueued.Load() != 40 {
		t.Fatalf("enqueued = %d", o.enqueued.Load())
	}
	if o.failed.Load() < 1 {
		t.Fatal("failure not reported to observer")
	}
	// Cancelled jobs are never Started, so Finished <= enqueued; every
	// Started job must still get its Finished callback.
	if s, f := o.started.Load(), o.finished.Load(); s != f {
		t.Fatalf("started %d != finished %d", s, f)
	}
}

// TestPoolCountersDrainPending: the pool gauges must return to their
// starting level after every Map call — including one cut short by an
// error, where undispatched jobs drain in bulk.
func TestPoolCountersDrainPending(t *testing.T) {
	pending0 := obs.PoolPending.Load()
	inflight0 := obs.PoolInFlight.Load()
	done0 := obs.PoolJobsDone.Load()
	enq0 := obs.PoolJobsEnqueued.Load()
	errs0 := obs.PoolJobErrors.Load()

	if _, err := Map(4, 30, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	_, err := Map(2, 1000, func(i int) (int, error) {
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(time.Microsecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}

	if got := obs.PoolPending.Load(); got != pending0 {
		t.Errorf("pending gauge leaked: %d, started at %d", got, pending0)
	}
	if got := obs.PoolInFlight.Load(); got != inflight0 {
		t.Errorf("inflight gauge leaked: %d, started at %d", got, inflight0)
	}
	if got := obs.PoolJobsEnqueued.Load() - enq0; got != 1030 {
		t.Errorf("enqueued delta = %d, want 1030", got)
	}
	if got := obs.PoolJobErrors.Load() - errs0; got < 1 {
		t.Errorf("error counter delta = %d", got)
	}
	done := obs.PoolJobsDone.Load() - done0
	if done < 31 || done > 1030 {
		t.Errorf("done delta = %d, want in [31, 1030]", done)
	}
	if obs.PoolLatency.Count() == 0 {
		t.Error("latency histogram empty")
	}
}

// TestMapInnerSkipsObserver: engine-internal fan-out must keep the
// pool.* metrics (real pool work) but stay invisible to the process
// Observer, so nested pools cannot inflate progress job counts or
// double-count busy time.
func TestMapInnerSkipsObserver(t *testing.T) {
	o := &countingObserver{}
	SetObserver(o)
	defer SetObserver(nil)

	done0 := obs.PoolJobsDone.Load()
	enq0 := obs.PoolJobsEnqueued.Load()

	// An outer driver job fans inner jobs out through MapInner, the
	// shape every batch run and independent fleet has.
	if _, err := Map(2, 3, func(i int) (int, error) {
		inner, err := MapInner(2, 5, func(j int) (int, error) { return j, nil })
		return len(inner), err
	}); err != nil {
		t.Fatal(err)
	}

	if o.enqueued.Load() != 3 || o.finished.Load() != 3 {
		t.Fatalf("observer saw %d enqueued / %d finished, want only the 3 outer jobs",
			o.enqueued.Load(), o.finished.Load())
	}
	// The metrics still count all 3 + 3×5 jobs.
	if got := obs.PoolJobsEnqueued.Load() - enq0; got != 18 {
		t.Fatalf("pool.jobs.enqueued delta = %d, want 18", got)
	}
	if got := obs.PoolJobsDone.Load() - done0; got != 18 {
		t.Fatalf("pool.jobs.done delta = %d, want 18", got)
	}
}

func TestMapInnerSemanticsMatchMap(t *testing.T) {
	got, err := MapInner(4, 10, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	if _, err := MapInner(2, 4, func(i int) (int, error) {
		if i == 1 {
			return 0, errors.New("inner boom")
		}
		return i, nil
	}); err == nil || !strings.Contains(err.Error(), "inner boom") {
		t.Fatalf("err = %v", err)
	}
}
