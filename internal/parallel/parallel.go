// Package parallel is the bounded worker pool behind the reproduction's
// experiment sweeps. Every figure and ablation of the paper's Section VI
// is a set of mutually independent simulation runs (capacities ×
// recharge processes × policies), so the whole pipeline is
// embarrassingly parallel: Map fans indexed jobs across a fixed number
// of goroutines while keeping results bit-identical to a sequential
// run.
//
// Determinism contract: results are returned in job-index order, each
// job's inputs depend only on its index (never on scheduling), and
// MapSeeded derives each job's random stream from (seed, index) alone
// via rng.Source.Split. Consequently the output of a sweep is identical
// for any worker count, including 1.
package parallel

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"eventcap/internal/obs"
	"eventcap/internal/rng"
)

// Workers resolves a requested worker count: values below 1 mean "one
// worker per available CPU" (GOMAXPROCS).
func Workers(n int) int {
	if n >= 1 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError reports a panic raised inside a job, preserving the job's
// identity and the panicking goroutine's stack. Map converts panics to
// errors instead of crashing the pool, so one bad sweep point cannot
// take down a multi-hour experiment run without a diagnosis.
type PanicError struct {
	// Job is the index of the job that panicked.
	Job int
	// Value is the value passed to panic.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: job %d panicked: %v\n%s", e.Job, e.Value, e.Stack)
}

// Observer receives pool lifecycle callbacks for live progress
// reporting: Enqueued(n) when a Map call admits n jobs, Started when a
// job begins executing, and Finished with the job's wall time (and its
// error, nil on success) when it completes. Callbacks may arrive
// concurrently from every worker goroutine, so implementations must be
// safe for concurrent use; obs.Progress is the canonical one. Jobs
// cancelled by an earlier failure are never Started, so a batch may
// finish with fewer Finished calls than were Enqueued.
type Observer interface {
	Enqueued(n int)
	Started()
	Finished(d time.Duration, err error)
}

// observer is the process-wide pool observer (nil when unset). Stored
// behind a pointer so Load/Store stay atomic for an interface value.
var observer atomic.Pointer[Observer]

// SetObserver installs o as the pool observer for subsequent Map calls
// (nil uninstalls). Intended to be set once at process start by the
// experiment driver; Map calls already in flight may miss the change.
func SetObserver(o Observer) {
	if o == nil {
		observer.Store(nil)
		return
	}
	observer.Store(&o)
}

func loadObserver() Observer {
	if p := observer.Load(); p != nil {
		return *p
	}
	return nil
}

// Map runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and returns the results in index order. The first failing
// job (lowest index among jobs that ran) cancels dispatch of not-yet
// started jobs and its error is returned; in-flight jobs run to
// completion. A panic inside fn is captured as a *PanicError for that
// job rather than crashing the pool.
func Map[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return mapPool(workers, n, fn, true)
}

// MapInner is Map for engine-internal fan-out — batch chunks, the
// per-sensor jobs of an independent fleet. The jobs still count into
// the pool.* metrics (they are real pool work), but the process
// Observer is not notified: an outer job's wall time already includes
// its inner jobs, so reporting both would inflate the progress job
// totals and double-count busy time, which is exactly what made
// -progress ETAs wrong under -batch and fig6 fleets.
func MapInner[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	return mapPool(workers, n, fn, false)
}

func mapPool[T any](workers, n int, fn func(i int) (T, error), notify bool) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	var o Observer
	if notify {
		o = loadObserver()
	}
	obs.PoolJobsEnqueued.Add(int64(n))
	obs.PoolPending.Add(int64(n))
	if o != nil {
		o.Enqueued(n)
	}
	// Each dispatched job moves itself from pending to in-flight; jobs an
	// early error left undispatched drain from the pending gauge here.
	var dispatched atomic.Int64
	defer func() { obs.PoolPending.Add(dispatched.Load() - int64(n)) }()

	out := make([]T, n)
	if w == 1 {
		// Sequential fast path: same semantics (panic capture, stop at
		// first error), no goroutine overhead.
		for i := 0; i < n; i++ {
			dispatched.Add(1)
			v, err := runJobObserved(i, fn, o)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	var (
		next     atomic.Int64 // next job index to dispatch, minus one
		stop     atomic.Bool  // set on first error: stop dispatching
		mu       sync.Mutex
		firstErr error
		firstIdx = n // lowest failing job index seen so far
	)
	next.Store(-1)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if stop.Load() {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				dispatched.Add(1)
				v, err := runJobObserved(i, fn, o)
				if err != nil {
					record(i, err)
					return
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// runJobObserved wraps runJob with the pending → in-flight → done
// bookkeeping and the latency observation shared by both Map paths.
func runJobObserved[T any](i int, fn func(int) (T, error), o Observer) (T, error) {
	obs.PoolPending.Add(-1)
	obs.PoolInFlight.Add(1)
	if o != nil {
		o.Started()
	}
	start := time.Now()
	v, err := runJob(i, fn)
	d := time.Since(start)
	obs.PoolInFlight.Add(-1)
	obs.PoolJobsDone.Inc()
	obs.PoolLatency.Observe(d)
	if err != nil {
		obs.PoolJobErrors.Inc()
	}
	if o != nil {
		o.Finished(d, err)
	}
	return v, err
}

// runJob executes one job with panic capture.
func runJob[T any](i int, fn func(int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Job: i, Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(i)
}

// ForEach is Map for jobs with no result value.
func ForEach(workers, n int, fn func(i int) error) error {
	_, err := Map(workers, n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// seedStream scopes MapSeeded's derived streams away from the
// simulator's own stream ids, so a sweep and the runs inside it never
// alias.
const seedStream = 0x9a7a11e150a7c4ed

// MapSeeded is Map with a deterministic per-job random source: job i
// receives rng.New(seed, seedStream).Split(i), reconstructed
// independently inside the job so the stream depends only on (seed, i)
// — never on worker count or scheduling.
func MapSeeded[T any](workers, n int, seed uint64, fn func(i int, src *rng.Source) (T, error)) ([]T, error) {
	return Map(workers, n, func(i int) (T, error) {
		return fn(i, rng.New(seed, seedStream).Split(uint64(i)))
	})
}
