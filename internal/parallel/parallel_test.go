package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eventcap/internal/rng"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		got, err := Map(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, 0, func(i int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty Map: got %v, %v", got, err)
	}
	if err := ForEach(4, -3, func(int) error { return errors.New("never") }); err != nil {
		t.Fatalf("negative n: %v", err)
	}
}

func TestMapFirstErrorLowestIndex(t *testing.T) {
	errAt := func(bad map[int]bool) func(int) (int, error) {
		return func(i int) (int, error) {
			if bad[i] {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		}
	}
	for _, workers := range []int{1, 4, 16} {
		_, err := Map(workers, 50, errAt(map[int]bool{7: true, 31: true, 44: true}))
		if err == nil || !strings.Contains(err.Error(), "job 7 failed") {
			t.Fatalf("workers=%d: want lowest-index error, got %v", workers, err)
		}
	}
}

func TestMapErrorCancelsDispatch(t *testing.T) {
	var started atomic.Int64
	_, err := Map(2, 10_000, func(i int) (int, error) {
		started.Add(1)
		if i == 0 {
			return 0, errors.New("boom")
		}
		time.Sleep(time.Millisecond)
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := started.Load(); n > 100 {
		t.Fatalf("error did not cancel dispatch: %d jobs started", n)
	}
}

func TestMapPanicCaptured(t *testing.T) {
	for _, workers := range []int{1, 8} {
		_, err := Map(workers, 20, func(i int) (int, error) {
			if i == 13 {
				panic("unlucky")
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: want *PanicError, got %v", workers, err)
		}
		if pe.Job != 13 || pe.Value != "unlucky" || len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: bad PanicError: job=%d value=%v stackLen=%d",
				workers, pe.Job, pe.Value, len(pe.Stack))
		}
		if !strings.Contains(pe.Error(), "job 13 panicked: unlucky") {
			t.Fatalf("workers=%d: message %q", workers, pe.Error())
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(workers, 200, func(i int) (int, error) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		cur.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent jobs with %d workers", p, workers)
	}
}

func TestWorkersDefault(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-2); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-2) = %d", got)
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(4, 100, func(i int) error {
		sum.Add(int64(i))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

// TestMapSeededDeterministic is the package's core guarantee: per-job
// streams depend only on (seed, index), so any worker count draws the
// same numbers.
func TestMapSeededDeterministic(t *testing.T) {
	draw := func(workers int) []uint64 {
		out, err := MapSeeded(workers, 64, 42, func(i int, src *rng.Source) (uint64, error) {
			// A few draws per job to exercise stream state.
			v := src.Uint64()
			v ^= src.Uint64()
			return v, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	want := draw(1)
	for _, workers := range []int{2, 8, 0} {
		got := draw(workers)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: job %d drew %x, want %x", workers, i, got[i], want[i])
			}
		}
	}
	// Distinct jobs must get distinct streams.
	seen := make(map[uint64]int)
	for i, v := range want {
		if j, dup := seen[v]; dup {
			t.Fatalf("jobs %d and %d drew identical values", i, j)
		}
		seen[v] = i
	}
	// Distinct seeds must decorrelate.
	other, err := MapSeeded(4, 64, 43, func(i int, src *rng.Source) (uint64, error) {
		v := src.Uint64()
		v ^= src.Uint64()
		return v, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range want {
		if want[i] == other[i] {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d of 64 jobs drew identical values under different seeds", same)
	}
}
