package numeric

import (
	"errors"
	"math"
	"sort"
	"testing"

	"eventcap/internal/rng"
)

func TestSimplexTextbook(t *testing.T) {
	// maximize 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
	// Optimum: x=2, y=6, objective 36.
	lp := NewLP(2)
	lp.SetObjective([]float64{3, 5}, true)
	lp.AddConstraint([]float64{1, 0}, LessEq, 4)
	lp.AddConstraint([]float64{0, 2}, LessEq, 12)
	lp.AddConstraint([]float64{3, 2}, LessEq, 18)
	sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-36) > 1e-9 {
		t.Fatalf("objective %v, want 36", sol.Objective)
	}
	if math.Abs(sol.X[0]-2) > 1e-9 || math.Abs(sol.X[1]-6) > 1e-9 {
		t.Fatalf("solution %v, want [2 6]", sol.X)
	}
}

func TestSimplexMinimize(t *testing.T) {
	// minimize x + y s.t. x + 2y >= 4, 3x + y >= 6. Optimum at
	// intersection: x = 8/5, y = 6/5, objective 14/5.
	lp := NewLP(2)
	lp.SetObjective([]float64{1, 1}, false)
	lp.AddConstraint([]float64{1, 2}, GreaterEq, 4)
	lp.AddConstraint([]float64{3, 1}, GreaterEq, 6)
	sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-2.8) > 1e-9 {
		t.Fatalf("objective %v, want 2.8", sol.Objective)
	}
}

func TestSimplexEquality(t *testing.T) {
	// maximize x + 2y s.t. x + y = 3, x <= 2. Optimum x=0, y=3, obj 6.
	lp := NewLP(2)
	lp.SetObjective([]float64{1, 2}, true)
	lp.AddConstraint([]float64{1, 1}, Equal, 3)
	lp.AddConstraint([]float64{1, 0}, LessEq, 2)
	sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-6) > 1e-9 {
		t.Fatalf("objective %v, want 6", sol.Objective)
	}
}

func TestSimplexInfeasible(t *testing.T) {
	lp := NewLP(1)
	lp.SetObjective([]float64{1}, true)
	lp.AddConstraint([]float64{1}, GreaterEq, 5)
	lp.AddConstraint([]float64{1}, LessEq, 1)
	if _, err := lp.Solve(); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("got %v, want ErrInfeasible", err)
	}
}

func TestSimplexUnbounded(t *testing.T) {
	lp := NewLP(2)
	lp.SetObjective([]float64{1, 1}, true)
	lp.AddConstraint([]float64{1, -1}, LessEq, 1)
	if _, err := lp.Solve(); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("got %v, want ErrUnbounded", err)
	}
}

func TestSimplexNegativeRHS(t *testing.T) {
	// maximize x s.t. -x <= -2 (i.e. x >= 2), x <= 5.
	lp := NewLP(1)
	lp.SetObjective([]float64{1}, true)
	lp.AddConstraint([]float64{-1}, LessEq, -2)
	lp.AddConstraint([]float64{1}, LessEq, 5)
	sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-5) > 1e-9 {
		t.Fatalf("objective %v, want 5", sol.Objective)
	}
}

func TestSimplexDegenerate(t *testing.T) {
	// A degenerate vertex (redundant constraints meeting at the optimum)
	// exercises the anti-cycling fallback.
	lp := NewLP(2)
	lp.SetObjective([]float64{1, 1}, true)
	lp.AddConstraint([]float64{1, 0}, LessEq, 1)
	lp.AddConstraint([]float64{0, 1}, LessEq, 1)
	lp.AddConstraint([]float64{1, 1}, LessEq, 2)
	lp.AddConstraint([]float64{2, 2}, LessEq, 4)
	sol, err := lp.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-2) > 1e-9 {
		t.Fatalf("objective %v, want 2", sol.Objective)
	}
}

// TestSimplexFractionalKnapsack checks the LP solver against the analytic
// greedy solution of randomized fractional knapsacks — the exact structure
// of the paper's full-information program (7)-(8).
func TestSimplexFractionalKnapsack(t *testing.T) {
	s := rng.New(31, 0)
	for trial := 0; trial < 40; trial++ {
		n := 2 + s.Intn(20)
		value := make([]float64, n)
		weight := make([]float64, n)
		var totalW float64
		for i := 0; i < n; i++ {
			value[i] = s.Float64() + 0.01
			weight[i] = s.Float64() + 0.01
			totalW += weight[i]
		}
		budget := s.Float64() * totalW

		// Analytic greedy by value density.
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			return value[idx[a]]/weight[idx[a]] > value[idx[b]]/weight[idx[b]]
		})
		remaining := budget
		var want float64
		for _, i := range idx {
			if remaining <= 0 {
				break
			}
			take := 1.0
			if weight[i] > remaining {
				take = remaining / weight[i]
			}
			want += take * value[i]
			remaining -= take * weight[i]
		}

		lp := NewLP(n)
		lp.SetObjective(value, true)
		lp.AddConstraint(weight, LessEq, budget)
		unit := make([]float64, n)
		for i := 0; i < n; i++ {
			for j := range unit {
				unit[j] = 0
			}
			unit[i] = 1
			lp.AddConstraint(unit, LessEq, 1)
		}
		sol, err := lp.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if math.Abs(sol.Objective-want) > 1e-7*(1+want) {
			t.Fatalf("trial %d: LP %v != greedy %v", trial, sol.Objective, want)
		}
		for i, x := range sol.X {
			if x < -1e-9 || x > 1+1e-9 {
				t.Fatalf("trial %d: x[%d]=%v out of [0,1]", trial, i, x)
			}
		}
	}
}

func TestSimplexSolutionFeasibility(t *testing.T) {
	// Property: returned solutions satisfy every constraint.
	s := rng.New(77, 0)
	for trial := 0; trial < 30; trial++ {
		n := 1 + s.Intn(8)
		m := 1 + s.Intn(8)
		lp := NewLP(n)
		obj := make([]float64, n)
		for i := range obj {
			obj[i] = 2*s.Float64() - 1
		}
		lp.SetObjective(obj, true)
		type con struct {
			coef []float64
			rhs  float64
		}
		cons := make([]con, 0, m+1)
		for k := 0; k < m; k++ {
			coef := make([]float64, n)
			for i := range coef {
				coef[i] = s.Float64() // nonnegative keeps it bounded-ish
			}
			rhs := s.Float64() * 5
			lp.AddConstraint(coef, LessEq, rhs)
			cons = append(cons, con{coef, rhs})
		}
		// A box to guarantee boundedness.
		all := make([]float64, n)
		for i := range all {
			all[i] = 1
		}
		lp.AddConstraint(all, LessEq, 100)
		cons = append(cons, con{all, 100})

		sol, err := lp.Solve()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for ci, c := range cons {
			if Dot(c.coef, sol.X) > c.rhs+1e-7 {
				t.Fatalf("trial %d: constraint %d violated", trial, ci)
			}
		}
		for i, x := range sol.X {
			if x < -1e-9 {
				t.Fatalf("trial %d: x[%d]=%v negative", trial, i, x)
			}
		}
	}
}

func TestLPPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero vars":           func() { NewLP(0) },
		"objective mismatch":  func() { NewLP(2).SetObjective([]float64{1}, true) },
		"constraint mismatch": func() { NewLP(2).AddConstraint([]float64{1}, LessEq, 0) },
		"bad relation":        func() { NewLP(1).AddConstraint([]float64{1}, Relation(0), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestRelationString(t *testing.T) {
	if LessEq.String() != "<=" || Equal.String() != "=" || GreaterEq.String() != ">=" {
		t.Fatal("Relation.String mismatch")
	}
	if Relation(0).String() != "Relation(0)" {
		t.Fatal("invalid relation should format numerically")
	}
}

func TestBisectFindsRoot(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Fatalf("root %v, want sqrt(2)", root)
	}
}

func TestBisectEndpointRoots(t *testing.T) {
	f := func(x float64) float64 { return x }
	if r, err := Bisect(f, 0, 1, 1e-9); err != nil || r != 0 {
		t.Fatalf("got (%v, %v), want (0, nil)", r, err)
	}
	if r, err := Bisect(f, -1, 0, 1e-9); err != nil || r != 0 {
		t.Fatalf("got (%v, %v), want (0, nil)", r, err)
	}
}

func TestBisectNoBracket(t *testing.T) {
	if _, err := Bisect(func(x float64) float64 { return 1 + x*x }, 0, 1, 1e-9); !errors.Is(err, ErrNoBracket) {
		t.Fatalf("got %v, want ErrNoBracket", err)
	}
}

func TestMaximizeMonotoneBudget(t *testing.T) {
	cost := func(x float64) float64 { return 3 * x }
	x, ok := MaximizeMonotoneBudget(cost, 1.5, 1e-12)
	if !ok || math.Abs(x-0.5) > 1e-9 {
		t.Fatalf("got (%v, %v), want (0.5, true)", x, ok)
	}
	// Budget covers the whole range.
	if x, ok := MaximizeMonotoneBudget(cost, 10, 1e-12); !ok || x != 1 {
		t.Fatalf("got (%v, %v), want (1, true)", x, ok)
	}
	// Budget below cost(0).
	costHigh := func(x float64) float64 { return 5 + x }
	if x, ok := MaximizeMonotoneBudget(costHigh, 1, 1e-12); ok || x != 0 {
		t.Fatalf("got (%v, %v), want (0, false)", x, ok)
	}
}

func BenchmarkSimplexKnapsack200(b *testing.B) {
	s := rng.New(5, 0)
	const n = 200
	value := make([]float64, n)
	weight := make([]float64, n)
	for i := 0; i < n; i++ {
		value[i] = s.Float64() + 0.01
		weight[i] = s.Float64() + 0.01
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lp := NewLP(n)
		lp.SetObjective(value, true)
		lp.AddConstraint(weight, LessEq, 30)
		unit := make([]float64, n)
		for j := 0; j < n; j++ {
			for k := range unit {
				unit[k] = 0
			}
			unit[j] = 1
			lp.AddConstraint(unit, LessEq, 1)
		}
		if _, err := lp.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}
