package numeric

// Clamp01 clips x into [0, 1]. It is the blessed way to coerce a
// computed probability back into range (the probrange analyzer of
// DESIGN.md §10 recognizes any call as a clamp): use it when float
// error can legitimately push a probability a few ulps out of [0, 1],
// and a // prob-invariant annotation when the math proves the range and
// clamping would only obscure that. NaN maps to 0 — a probability that
// is not a number captures nothing.
func Clamp01(x float64) float64 {
	if !(x > 0) { // also catches NaN
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
