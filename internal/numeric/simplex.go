package numeric

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of a linear constraint.
type Relation int

// Constraint senses. Enums start at 1 so the zero value is invalid.
const (
	LessEq Relation = iota + 1
	Equal
	GreaterEq
)

func (r Relation) String() string {
	switch r {
	case LessEq:
		return "<="
	case Equal:
		return "="
	case GreaterEq:
		return ">="
	default:
		return fmt.Sprintf("Relation(%d)", int(r))
	}
}

// LP solver errors.
var (
	ErrInfeasible = errors.New("numeric: linear program is infeasible")
	ErrUnbounded  = errors.New("numeric: linear program is unbounded")
)

type lpConstraint struct {
	coef []float64
	rel  Relation
	rhs  float64
}

// LP is a linear program over nonnegative variables:
//
//	maximize (or minimize) c·x
//	subject to A x {<=,=,>=} b, x >= 0.
//
// Upper bounds such as x_i <= 1 are expressed as ordinary constraints.
// Solve uses the two-phase tableau simplex method with Bland's rule, which
// is adequate for the problem sizes in this library (hundreds of
// variables).
type LP struct {
	numVars     int
	objective   []float64
	maximize    bool
	constraints []lpConstraint
}

// NewLP creates a linear program with numVars nonnegative variables and a
// zero objective (maximization by default).
func NewLP(numVars int) *LP {
	if numVars <= 0 {
		panic("numeric: LP needs at least one variable")
	}
	return &LP{
		numVars:   numVars,
		objective: make([]float64, numVars),
		maximize:  true,
	}
}

// SetObjective sets the objective coefficients and direction. The slice is
// copied. It panics if len(c) != numVars.
func (l *LP) SetObjective(c []float64, maximize bool) {
	if len(c) != l.numVars {
		panic(fmt.Sprintf("numeric: objective has %d coefficients, want %d", len(c), l.numVars))
	}
	copy(l.objective, c)
	l.maximize = maximize
}

// AddConstraint appends the constraint coef·x rel rhs. The coefficient
// slice is copied. It panics if len(coef) != numVars or rel is invalid.
func (l *LP) AddConstraint(coef []float64, rel Relation, rhs float64) {
	if len(coef) != l.numVars {
		panic(fmt.Sprintf("numeric: constraint has %d coefficients, want %d", len(coef), l.numVars))
	}
	if rel != LessEq && rel != Equal && rel != GreaterEq {
		panic("numeric: invalid constraint relation")
	}
	c := make([]float64, len(coef))
	copy(c, coef)
	l.constraints = append(l.constraints, lpConstraint{coef: c, rel: rel, rhs: rhs})
}

// LPSolution is the result of LP.Solve.
type LPSolution struct {
	X         []float64 // optimal variable values, length numVars
	Objective float64   // optimal objective value (in the user's direction)
}

const lpEps = 1e-9

// Solve optimizes the program. It returns ErrInfeasible or ErrUnbounded
// when appropriate.
func (l *LP) Solve() (*LPSolution, error) {
	m := len(l.constraints)
	n := l.numVars

	// Normalize rows so every rhs is nonnegative, then count auxiliary
	// columns: one slack per <=, one surplus per >=, one artificial per
	// >= or =.
	type rowSpec struct {
		coef       []float64
		rel        Relation
		rhs        float64
		slack      int // column index or -1
		artificial int // column index or -1
	}
	rows := make([]rowSpec, m)
	numSlack, numArt := 0, 0
	for i, c := range l.constraints {
		coef := make([]float64, n)
		copy(coef, c.coef)
		rel, rhs := c.rel, c.rhs
		if rhs < 0 {
			for j := range coef {
				coef[j] = -coef[j]
			}
			rhs = -rhs
			switch rel {
			case LessEq:
				rel = GreaterEq
			case GreaterEq:
				rel = LessEq
			}
		}
		rows[i] = rowSpec{coef: coef, rel: rel, rhs: rhs, slack: -1, artificial: -1}
		switch rel {
		case LessEq, GreaterEq:
			numSlack++
		}
		if rel != LessEq {
			numArt++
		}
	}

	total := n + numSlack + numArt
	// Tableau: m rows of [coefficients | rhs]; column total is rhs.
	tab := make([][]float64, m)
	basis := make([]int, m)
	slackCol, artCol := n, n+numSlack
	for i := range rows {
		row := make([]float64, total+1)
		copy(row, rows[i].coef)
		row[total] = rows[i].rhs
		switch rows[i].rel {
		case LessEq:
			row[slackCol] = 1
			rows[i].slack = slackCol
			basis[i] = slackCol
			slackCol++
		case GreaterEq:
			row[slackCol] = -1
			rows[i].slack = slackCol
			slackCol++
			row[artCol] = 1
			rows[i].artificial = artCol
			basis[i] = artCol
			artCol++
		case Equal:
			row[artCol] = 1
			rows[i].artificial = artCol
			basis[i] = artCol
			artCol++
		}
		tab[i] = row
	}

	if numArt > 0 {
		// Phase 1: minimize the sum of artificial variables, i.e.
		// maximize -Σ artificials.
		obj := make([]float64, total)
		for j := n + numSlack; j < total; j++ {
			obj[j] = -1
		}
		value, err := simplexIterate(tab, basis, obj)
		if err != nil {
			return nil, fmt.Errorf("phase 1: %w", err)
		}
		if value < -lpEps {
			return nil, ErrInfeasible
		}
		// Drive any artificial variables remaining in the basis out of
		// it (they must be at zero level).
		for i, b := range basis {
			if b < n+numSlack {
				continue
			}
			pivoted := false
			for j := 0; j < n+numSlack; j++ {
				if math.Abs(tab[i][j]) > lpEps {
					pivot(tab, basis, i, j)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row: zero it so it cannot affect phase 2.
				for j := range tab[i] {
					tab[i][j] = 0
				}
			}
		}
	}

	// Phase 2: optimize the real objective over structural and slack
	// columns, forbidding artificial columns.
	obj := make([]float64, total)
	for j := 0; j < n; j++ {
		if l.maximize {
			obj[j] = l.objective[j]
		} else {
			obj[j] = -l.objective[j]
		}
	}
	for i := range tab {
		// Make artificial columns unusable.
		for j := n + numSlack; j < total; j++ {
			tab[i][j] = 0
		}
	}
	value, err := simplexIterate(tab, basis, obj)
	if err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i, b := range basis {
		if b < n {
			x[b] = tab[i][total]
		}
	}
	if !l.maximize {
		value = -value
	}
	return &LPSolution{X: x, Objective: value}, nil
}

// simplexIterate runs primal simplex on the tableau with the given
// objective (always maximization), updating basis in place. It returns the
// optimal objective value.
func simplexIterate(tab [][]float64, basis []int, obj []float64) (float64, error) {
	m := len(tab)
	if m == 0 {
		return 0, nil
	}
	total := len(tab[0]) - 1

	// Reduced costs z_j - c_j maintained in a working row.
	zRow := make([]float64, total+1)
	recompute := func() {
		for j := 0; j <= total; j++ {
			var sum KahanSum
			for i := 0; i < m; i++ {
				cb := 0.0
				if basis[i] < total {
					cb = obj[basis[i]]
				}
				if cb != 0 {
					sum.Add(cb * tab[i][j])
				}
			}
			zRow[j] = sum.Value()
			if j < total {
				zRow[j] -= obj[j]
			}
		}
	}
	recompute()

	for iter := 0; ; iter++ {
		if iter > 50000 {
			return 0, errors.New("numeric: simplex iteration limit exceeded")
		}
		// Entering column: most negative reduced cost (Dantzig), falling
		// back to Bland's rule periodically to guarantee termination.
		enter := -1
		if iter%64 == 63 {
			for j := 0; j < total; j++ {
				if zRow[j] < -lpEps {
					enter = j
					break
				}
			}
		} else {
			best := -lpEps
			for j := 0; j < total; j++ {
				if zRow[j] < best {
					best = zRow[j]
					enter = j
				}
			}
		}
		if enter < 0 {
			return zRow[total], nil
		}
		// Leaving row: minimum ratio test, Bland tie-break on basis index.
		leave := -1
		bestRatio := math.Inf(1)
		for i := 0; i < m; i++ {
			a := tab[i][enter]
			if a <= lpEps {
				continue
			}
			ratio := tab[i][total] / a
			if ratio < bestRatio-lpEps || (ratio < bestRatio+lpEps && (leave == -1 || basis[i] < basis[leave])) {
				bestRatio = ratio
				leave = i
			}
		}
		if leave < 0 {
			return 0, ErrUnbounded
		}
		pivot(tab, basis, leave, enter)
		// Update the reduced-cost row by the same elimination.
		factor := zRow[enter]
		if factor != 0 {
			for j := 0; j <= total; j++ {
				zRow[j] -= factor * tab[leave][j]
			}
			zRow[enter] = 0
		}
		if iter%256 == 255 {
			recompute() // refresh against drift on long runs
		}
	}
}

// pivot performs a Gauss-Jordan pivot on tab[row][col] and records col as
// basic in row.
func pivot(tab [][]float64, basis []int, row, col int) {
	pr := tab[row]
	pv := pr[col]
	inv := 1 / pv
	for j := range pr {
		pr[j] *= inv
	}
	pr[col] = 1
	for i := range tab {
		if i == row {
			continue
		}
		f := tab[i][col]
		if f == 0 {
			continue
		}
		ri := tab[i]
		for j := range ri {
			ri[j] -= f * pr[j]
		}
		ri[col] = 0
	}
	basis[row] = col
}
