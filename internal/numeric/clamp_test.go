package numeric

import (
	"math"
	"testing"
)

func TestClamp01(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{-1, 0},
		{0, 0},
		{math.Copysign(0, -1), 0},
		{0.25, 0.25},
		{1, 1},
		{1 + 1e-15, 1},
		{2, 1},
		{math.Inf(1), 1},
		{math.Inf(-1), 0},
		{math.NaN(), 0},
	}
	for _, c := range cases {
		if got := Clamp01(c.in); got != c.want {
			t.Errorf("Clamp01(%g) = %g, want %g", c.in, got, c.want)
		}
	}
	// In-range values must pass through bit-identically: Clamp01 on an
	// already-valid probability cannot perturb a simulation result.
	for _, v := range []float64{1e-300, 0.1, 0.5, 1 - 1e-16} {
		if got := Clamp01(v); math.Float64bits(got) != math.Float64bits(v) {
			t.Errorf("Clamp01(%g) altered bits: got %g", v, got)
		}
	}
}
