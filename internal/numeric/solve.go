package numeric

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("numeric: singular matrix")

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix allocates a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("numeric: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// MulVec returns m·x. It panics if len(x) != m.Cols.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic(fmt.Sprintf("numeric: MulVec dimension mismatch %d != %d", len(x), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		out[i] = Dot(row, x)
	}
	return out
}

// SolveLinear solves A·x = b in place using Gaussian elimination with
// partial pivoting. A must be square with A.Rows == len(b). A and b are
// clobbered. It returns ErrSingular when no unique solution exists.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, fmt.Errorf("numeric: SolveLinear needs a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("numeric: SolveLinear rhs length %d != %d", len(b), n)
	}
	for col := 0; col < n; col++ {
		// Partial pivot: pick the largest magnitude entry in this column.
		pivot, pivotAbs := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > pivotAbs {
				pivot, pivotAbs = r, v
			}
		}
		if pivotAbs < 1e-300 {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			b[pivot], b[col] = b[col], b[pivot]
		}
		pv := a.At(col, col)
		for r := col + 1; r < n; r++ {
			factor := a.At(r, col) / pv
			if factor == 0 {
				continue
			}
			a.Set(r, col, 0)
			for c := col + 1; c < n; c++ {
				a.Set(r, c, a.At(r, c)-factor*a.At(col, c))
			}
			b[r] -= factor * b[col]
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := b[i]
		for j := i + 1; j < n; j++ {
			sum -= a.At(i, j) * x[j]
		}
		x[i] = sum / a.At(i, i)
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri := m.Data[i*m.Cols : (i+1)*m.Cols]
	rj := m.Data[j*m.Cols : (j+1)*m.Cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// StationaryDistribution returns the stationary distribution y of the
// row-stochastic transition matrix P (y·P = y, Σy = 1) by solving the
// linear system (Pᵀ - I)y = 0 with the normalization constraint replacing
// the last equation. P must be square.
func StationaryDistribution(p *Matrix) ([]float64, error) {
	n := p.Rows
	if p.Cols != n {
		return nil, fmt.Errorf("numeric: StationaryDistribution needs square matrix, got %dx%d", p.Rows, p.Cols)
	}
	if n == 0 {
		return nil, errors.New("numeric: empty transition matrix")
	}
	a := NewMatrix(n, n)
	b := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Row i of (Pᵀ - I): Σ_j (P[j][i] - δij) y_j = 0.
			v := p.At(j, i)
			if i == j {
				v--
			}
			a.Set(i, j, v)
		}
	}
	// Replace the last equation by Σ y_j = 1.
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b[n-1] = 1
	y, err := SolveLinear(a, b)
	if err != nil {
		return nil, fmt.Errorf("stationary distribution: %w", err)
	}
	// Clip tiny negative components caused by roundoff and renormalize.
	var sum KahanSum
	for i, v := range y {
		if v < 0 {
			if v < -1e-8 {
				return nil, fmt.Errorf("stationary distribution has negative mass %g at state %d", v, i)
			}
			y[i] = 0
			v = 0
		}
		sum.Add(v)
	}
	total := sum.Value()
	if total <= 0 {
		return nil, ErrSingular
	}
	for i := range y {
		y[i] /= total
	}
	return y, nil
}
