package numeric

import (
	"errors"
	"math"
	"testing"

	"eventcap/internal/rng"
)

func TestSolveLinearKnown(t *testing.T) {
	// 2x + y = 5; x - y = 1  =>  x = 2, y = 1.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, -1)
	x, err := SolveLinear(a, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-12 || math.Abs(x[1]-1) > 1e-12 {
		t.Fatalf("got %v, want [2 1]", x)
	}
}

func TestSolveLinearNeedsPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	a := NewMatrix(2, 2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 0)
	x, err := SolveLinear(a, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-4) > 1e-12 || math.Abs(x[1]-3) > 1e-12 {
		t.Fatalf("got %v, want [4 3]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 4)
	if _, err := SolveLinear(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("got %v, want ErrSingular", err)
	}
}

func TestSolveLinearRejectsNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestSolveLinearRejectsBadRHS(t *testing.T) {
	a := NewMatrix(2, 2)
	if _, err := SolveLinear(a, []float64{1}); err == nil {
		t.Fatal("expected error for rhs length mismatch")
	}
}

func TestSolveLinearRandomRoundTrip(t *testing.T) {
	s := rng.New(11, 0)
	for trial := 0; trial < 50; trial++ {
		n := 1 + s.Intn(12)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = 2*s.Float64() - 1
		}
		// Diagonal dominance guarantees nonsingularity.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n))
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = 2*s.Float64() - 1
		}
		b := a.MulVec(want)
		got, err := SolveLinear(a.Clone(), b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: x[%d] = %v, want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMulVecPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(2, 2).MulVec([]float64{1})
}

func TestMatrixClone(t *testing.T) {
	a := NewMatrix(1, 2)
	a.Set(0, 0, 7)
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 7 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestStationaryTwoState(t *testing.T) {
	// P = [[0.9 0.1],[0.5 0.5]] has stationary (5/6, 1/6).
	p := NewMatrix(2, 2)
	p.Set(0, 0, 0.9)
	p.Set(0, 1, 0.1)
	p.Set(1, 0, 0.5)
	p.Set(1, 1, 0.5)
	y, err := StationaryDistribution(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y[0]-5.0/6) > 1e-10 || math.Abs(y[1]-1.0/6) > 1e-10 {
		t.Fatalf("got %v, want [5/6 1/6]", y)
	}
}

func TestStationaryRandomChain(t *testing.T) {
	s := rng.New(4, 0)
	for trial := 0; trial < 30; trial++ {
		n := 2 + s.Intn(15)
		p := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			var total float64
			row := make([]float64, n)
			for j := range row {
				row[j] = s.Float64() + 0.01 // strictly positive => ergodic
				total += row[j]
			}
			for j := range row {
				p.Set(i, j, row[j]/total)
			}
		}
		y, err := StationaryDistribution(p)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// y P = y and Σ y = 1.
		if math.Abs(Sum(y)-1) > 1e-10 {
			t.Fatalf("trial %d: distribution sums to %v", trial, Sum(y))
		}
		for j := 0; j < n; j++ {
			var col float64
			for i := 0; i < n; i++ {
				col += y[i] * p.At(i, j)
			}
			if math.Abs(col-y[j]) > 1e-9 {
				t.Fatalf("trial %d: (yP)[%d]=%v != y[%d]=%v", trial, j, col, j, y[j])
			}
		}
	}
}

func TestStationaryEmpty(t *testing.T) {
	if _, err := StationaryDistribution(NewMatrix(0, 0)); err == nil {
		t.Fatal("expected error for empty matrix")
	}
}

func TestStationaryRejectsNonSquare(t *testing.T) {
	if _, err := StationaryDistribution(NewMatrix(2, 3)); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}
