// Package numeric provides the numerical routines the rest of the library
// is built on: compensated summation, discrete convolution, dense linear
// solves, bisection, and a bounded-variable simplex solver for linear
// programs.
//
// The repository is restricted to the standard library, so these replace
// what a BLAS/LAPACK or LP package would normally supply. All routines are
// deterministic and allocation-conscious; none are safe for concurrent
// mutation of shared inputs.
package numeric

// KahanSum accumulates float64 values with Kahan-Babuska compensation,
// reducing the error of long sums (e.g. tail probabilities over 10^5
// slots) from O(n·eps) to O(eps).
//
// The zero value is ready to use.
type KahanSum struct {
	sum, comp float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if abs(k.sum) >= abs(v) {
		k.comp += (k.sum - t) + v
	} else {
		k.comp += (v - t) + k.sum
	}
	k.sum = t
}

// Value returns the compensated total.
func (k *KahanSum) Value() float64 { return k.sum + k.comp }

// Reset clears the accumulator.
func (k *KahanSum) Reset() { k.sum, k.comp = 0, 0 }

// Sum returns the compensated sum of xs.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Value()
}

// Dot returns the compensated dot product of a and b. It panics if the
// lengths differ.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("numeric: Dot length mismatch")
	}
	var k KahanSum
	for i, x := range a {
		k.Add(x * b[i])
	}
	return k.Value()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
