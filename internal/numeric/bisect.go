package numeric

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by Bisect when f(lo) and f(hi) have the same
// sign, so no root is bracketed.
var ErrNoBracket = errors.New("numeric: root not bracketed")

// Bisect finds x in [lo, hi] with f(x) ≈ 0 by bisection, assuming f is
// continuous and f(lo), f(hi) have opposite signs (either may be zero).
// It iterates until the interval width falls below tol or 200 iterations.
func Bisect(f func(float64) float64, lo, hi, tol float64) (float64, error) {
	flo, fhi := f(lo), f(hi)
	if flo == 0 {
		return lo, nil
	}
	if fhi == 0 {
		return hi, nil
	}
	if math.Signbit(flo) == math.Signbit(fhi) {
		return 0, ErrNoBracket
	}
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		fm := f(mid)
		if fm == 0 {
			return mid, nil
		}
		if math.Signbit(fm) == math.Signbit(flo) {
			lo, flo = mid, fm
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2, nil
}

// MaximizeMonotoneBudget finds the largest x in [0, 1] such that
// cost(x) <= budget, assuming cost is nondecreasing in x. It is used to
// pick fractional activation probabilities that exactly exhaust an energy
// budget. If even cost(0) exceeds the budget it returns 0 and false.
func MaximizeMonotoneBudget(cost func(float64) float64, budget, tol float64) (float64, bool) {
	if cost(0) > budget {
		return 0, false
	}
	if cost(1) <= budget {
		return 1, true
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200 && hi-lo > tol; i++ {
		mid := lo + (hi-lo)/2
		if cost(mid) <= budget {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, true
}
