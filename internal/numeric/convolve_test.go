package numeric

import (
	"math"
	"testing"
	"testing/quick"

	"eventcap/internal/rng"
)

func almostEqualSlices(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestConvolveKnown(t *testing.T) {
	got := Convolve([]float64{1, 2}, []float64{3, 4, 5})
	want := []float64{3, 10, 13, 10}
	if !almostEqualSlices(got, want, 1e-12) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestConvolveEmpty(t *testing.T) {
	if got := Convolve(nil, []float64{1}); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
	if got := Convolve([]float64{1}, nil); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}

func TestConvolveIdentity(t *testing.T) {
	a := []float64{0.5, 0.25, 0.25}
	got := Convolve(a, []float64{1})
	if !almostEqualSlices(got, a, 1e-15) {
		t.Fatalf("convolution with delta changed input: %v", got)
	}
}

func TestConvolveCommutative(t *testing.T) {
	s := rng.New(1, 0)
	for trial := 0; trial < 50; trial++ {
		a := make([]float64, 1+s.Intn(10))
		b := make([]float64, 1+s.Intn(10))
		for i := range a {
			a[i] = s.Float64()
		}
		for i := range b {
			b[i] = s.Float64()
		}
		if !almostEqualSlices(Convolve(a, b), Convolve(b, a), 1e-12) {
			t.Fatalf("convolution not commutative for %v, %v", a, b)
		}
	}
}

func TestConvolvePMFMassPreserved(t *testing.T) {
	// The convolution of two PMFs is a PMF: total mass multiplies.
	if err := quick.Check(func(seed uint64) bool {
		s := rng.New(seed, 1)
		a := randomPMF(s, 1+s.Intn(20))
		b := randomPMF(s, 1+s.Intn(20))
		c := Convolve(a, b)
		return math.Abs(Sum(c)-1) < 1e-12
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func randomPMF(s *rng.Source, n int) []float64 {
	p := make([]float64, n)
	var total float64
	for i := range p {
		p[i] = s.Float64() + 1e-3
		total += p[i]
	}
	for i := range p {
		p[i] /= total
	}
	return p
}

func TestConvolveTruncMatchesFull(t *testing.T) {
	s := rng.New(2, 0)
	a := randomPMF(s, 8)
	b := randomPMF(s, 5)
	full := Convolve(a, b)
	for n := 1; n <= len(full)+2; n++ {
		got := ConvolveTrunc(a, b, n)
		wantLen := n
		if wantLen > len(full) {
			wantLen = len(full)
		}
		if !almostEqualSlices(got, full[:wantLen], 1e-12) {
			t.Fatalf("n=%d: got %v, want %v", n, got, full[:wantLen])
		}
	}
}

func TestConvolveTruncZeroN(t *testing.T) {
	if got := ConvolveTrunc([]float64{1}, []float64{1}, 0); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}

func TestSelfConvolvePowers(t *testing.T) {
	p := []float64{0.5, 0.5}
	powers := SelfConvolvePowers(p, 3, 10)
	if len(powers) != 3 {
		t.Fatalf("got %d powers, want 3", len(powers))
	}
	if !almostEqualSlices(powers[0], p, 1e-15) {
		t.Fatalf("first power %v != p", powers[0])
	}
	if !almostEqualSlices(powers[1], []float64{0.25, 0.5, 0.25}, 1e-15) {
		t.Fatalf("second power %v", powers[1])
	}
	if !almostEqualSlices(powers[2], []float64{0.125, 0.375, 0.375, 0.125}, 1e-15) {
		t.Fatalf("third power %v", powers[2])
	}
}

func TestSelfConvolvePowersZeroK(t *testing.T) {
	if got := SelfConvolvePowers([]float64{1}, 0, 5); got != nil {
		t.Fatalf("got %v, want nil", got)
	}
}
