package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKahanSumExactSmall(t *testing.T) {
	var k KahanSum
	for _, v := range []float64{1, 2, 3, 4.5} {
		k.Add(v)
	}
	if got := k.Value(); got != 10.5 {
		t.Fatalf("got %v, want 10.5", got)
	}
}

func TestKahanSumBeatsNaive(t *testing.T) {
	// Sum 1 + 1e-16 repeated: naive summation loses all the small terms.
	var k KahanSum
	k.Add(1)
	naive := 1.0
	const n = 1e7
	for i := 0; i < int(n); i++ {
		k.Add(1e-16)
		naive += 1e-16
	}
	want := 1 + n*1e-16
	if got := k.Value(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("kahan got %v, want %v", got, want)
	}
	if math.Abs(naive-want) < 1e-12 {
		t.Skip("naive summation unexpectedly accurate; compensation untestable here")
	}
}

func TestKahanReset(t *testing.T) {
	var k KahanSum
	k.Add(5)
	k.Reset()
	k.Add(2)
	if got := k.Value(); got != 2 {
		t.Fatalf("after reset got %v, want 2", got)
	}
}

func TestSumMatchesLoop(t *testing.T) {
	if err := quick.Check(func(xs []float64) bool {
		// Constrain to finite, moderate values.
		clean := make([]float64, 0, len(xs))
		var want float64
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			x = math.Mod(x, 1e6)
			clean = append(clean, x)
			want += x
		}
		got := Sum(clean)
		return math.Abs(got-want) <= 1e-6*(1+math.Abs(want))
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDot(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("got %v, want 32", got)
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}
