package numeric

// Convolve returns the discrete convolution of a and b:
// out[k] = Σ_i a[i]·b[k-i] for 0 <= k < len(a)+len(b)-1.
// Either input may be empty, in which case the result is empty.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]float64, len(a)+len(b)-1)
	for i, av := range a {
		if av == 0 {
			continue
		}
		for j, bv := range b {
			out[i+j] += av * bv
		}
	}
	return out
}

// ConvolveTrunc is Convolve truncated to the first n coefficients. It
// avoids computing tail products that would be discarded, which matters
// when repeatedly self-convolving long PMFs.
func ConvolveTrunc(a, b []float64, n int) []float64 {
	if n <= 0 || len(a) == 0 || len(b) == 0 {
		return nil
	}
	if want := len(a) + len(b) - 1; n > want {
		n = want
	}
	out := make([]float64, n)
	for i, av := range a {
		if i >= n {
			break
		}
		if av == 0 {
			continue
		}
		limit := n - i
		if limit > len(b) {
			limit = len(b)
		}
		for j := 0; j < limit; j++ {
			out[i+j] += av * b[j]
		}
	}
	return out
}

// SelfConvolvePowers returns p, p*p, ..., p^(*k) (k-fold self-convolutions
// of the PMF p), each truncated to n coefficients. Index 0 of the result is
// the 1-fold convolution (p itself, truncated).
func SelfConvolvePowers(p []float64, k, n int) [][]float64 {
	if k <= 0 {
		return nil
	}
	out := make([][]float64, 0, k)
	cur := ConvolveTrunc(p, []float64{1}, n)
	out = append(out, cur)
	for i := 1; i < k; i++ {
		cur = ConvolveTrunc(cur, p, n)
		out = append(out, cur)
	}
	return out
}
