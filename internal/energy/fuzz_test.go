package energy

import (
	"math"
	"testing"
)

// FuzzRechargeN pits the O(1) closed form against the sequential loop
// it replaces (the kernel's fast-forward contract, DESIGN.md §8):
// whenever RechargeN claims success it must leave the battery in the
// bit-identical state the loop would have, and when it declines it must
// leave the battery completely untouched. Inputs mix arbitrary floats
// (which mostly exercise the decline path) with values snapped to the
// 2^-20 exactness grid (which exercise the closed form).
func FuzzRechargeN(f *testing.F) {
	f.Add(uint32(1<<20), uint32(10<<20), uint32(1<<18), uint16(100), false)
	f.Add(uint32(0), uint32(1<<21), uint32(3), uint16(4096), false)
	f.Add(uint32(5<<20), uint32(6<<20), uint32(1<<20), uint16(7), false)
	f.Add(uint32(123456), uint32(789012), uint32(345), uint16(977), true)
	f.Fuzz(func(t *testing.T, initRaw, capRaw, amountRaw uint32, n uint16, offGrid bool) {
		// Map raw uint32s onto the dyadic grid (multiples of 2^-20); the
		// offGrid variant perturbs the amount away from it.
		const grid = 1 << 20
		capacity := float64(capRaw%(64*grid)+1) / grid
		initial := float64(initRaw%(64*grid)) / grid
		amount := float64(amountRaw%(4*grid)) / grid
		if offGrid {
			amount += 1e-7 // not representable as k/2^20
		}

		fast, err := NewBattery(capacity, initial)
		if err != nil {
			t.Skip()
		}
		slow, err := NewBattery(capacity, initial)
		if err != nil {
			t.Skip()
		}
		before := *fast

		ok := fast.RechargeN(amount, int64(n))
		if !ok {
			if *fast != before {
				t.Fatalf("RechargeN declined but mutated the battery: %+v -> %+v", before, *fast)
			}
			return
		}
		for i := 0; i < int(n); i++ {
			slow.Recharge(amount)
		}
		if math.Float64bits(fast.Level()) != math.Float64bits(slow.Level()) {
			t.Fatalf("level diverged: closed form %v, loop %v (cap=%v init=%v amount=%v n=%d)",
				fast.Level(), slow.Level(), capacity, initial, amount, n)
		}
		if math.Float64bits(fast.Received()) != math.Float64bits(slow.Received()) {
			t.Fatalf("received diverged: closed form %v, loop %v", fast.Received(), slow.Received())
		}
		if math.Float64bits(fast.OverflowLost()) != math.Float64bits(slow.OverflowLost()) {
			t.Fatalf("overflow diverged: closed form %v, loop %v", fast.OverflowLost(), slow.OverflowLost())
		}
	})
}
