package energy

import (
	"math"
	"testing"

	"eventcap/internal/rng"
)

// snapshot captures the externally visible battery totals.
type snapshot struct {
	level, capacity, received, overflow float64
}

func snap(b *Battery) snapshot {
	return snapshot{b.Level(), b.Capacity(), b.Received(), b.OverflowLost()}
}

// TestRechargeNMatchesSequential verifies the closed form is bit-identical
// to the loop across level regimes, including runs that cross the overflow
// boundary mid-way.
func TestRechargeNMatchesSequential(t *testing.T) {
	cases := []struct {
		capacity, initial, amount float64
		n                         int64
	}{
		{1000, 500, 0.5, 1},
		{1000, 500, 0.5, 999},        // stays below capacity
		{1000, 500, 0.5, 1000},       // lands exactly on capacity
		{1000, 500, 0.5, 5000},       // overflows mid-run
		{1000, 1000, 1, 100},         // starts full, pure overflow
		{7, 3.5, 0.25, 400},          // small capacity, fractional grid values
		{100, 0, 5, 19},              // integral amounts
		{100, 0.25, 0.0009765625, 3}, // 2^-10 amounts, fine grid
	}
	for _, tc := range cases {
		fast, _ := NewBattery(tc.capacity, tc.initial)
		slow, _ := NewBattery(tc.capacity, tc.initial)
		if !fast.RechargeN(tc.amount, tc.n) {
			t.Fatalf("RechargeN(%g, %d) on K=%g refused grid-exact inputs", tc.amount, tc.n, tc.capacity)
		}
		for i := int64(0); i < tc.n; i++ {
			slow.Recharge(tc.amount)
		}
		if snap(fast) != snap(slow) {
			t.Errorf("RechargeN(%g, %d) K=%g init=%g: fast %+v != slow %+v",
				tc.amount, tc.n, tc.capacity, tc.initial, snap(fast), snap(slow))
		}
	}
}

// TestRechargeNRefusesOffGrid checks that inputs the closed form cannot
// prove exact are refused with the battery untouched, so callers can fall
// back to iterating.
func TestRechargeNRefusesOffGrid(t *testing.T) {
	cases := []struct {
		capacity, initial, amount float64
		n                         int64
	}{
		{1000, 500, 0.1, 10},       // 0.1 is not a dyadic rational
		{1000, 1.0 / 3.0, 0.5, 10}, // off-grid level
		{1000.3, 500, 0.5, 10},     // off-grid capacity
		{1000, 500, 0.5, 1 << 40},  // total blows the exactness bound
		{1000, 500, 1 << 30, 4},    // amount*n beyond gridMax
	}
	for _, tc := range cases {
		b, _ := NewBattery(tc.capacity, tc.initial)
		before := snap(b)
		if b.RechargeN(tc.amount, tc.n) {
			t.Errorf("RechargeN(%g, %d) K=%g init=%g: accepted off-grid input", tc.amount, tc.n, tc.capacity, tc.initial)
		}
		if snap(b) != before {
			t.Errorf("refused RechargeN mutated the battery: %+v -> %+v", before, snap(b))
		}
	}
}

// TestRechargeNTrivial covers the n<=0 / amount<=0 no-op contract.
func TestRechargeNTrivial(t *testing.T) {
	b, _ := NewBattery(10, 5)
	before := snap(b)
	for _, ok := range []bool{b.RechargeN(0.5, 0), b.RechargeN(0.5, -3), b.RechargeN(0, 7), b.RechargeN(-1, 7)} {
		if !ok {
			t.Fatal("trivial RechargeN must report success")
		}
	}
	if snap(b) != before {
		t.Fatal("trivial RechargeN mutated the battery")
	}
}

// TestConstantFastForwardBitIdentical compares FastForward against the
// sequential Next/Recharge loop the kernel replaces.
func TestConstantFastForwardBitIdentical(t *testing.T) {
	for _, e := range []float64{0.5, 1, 2.25, 0} {
		for _, n := range []int64{1, 7, 1000, 100000} {
			r, err := NewConstant(e)
			if err != nil {
				t.Fatal(err)
			}
			fast, _ := NewBattery(1000, 12.5)
			slow, _ := NewBattery(1000, 12.5)
			r.FastForward(fast, n, nil)
			for i := int64(0); i < n; i++ {
				slow.Recharge(r.Next(nil))
			}
			if snap(fast) != snap(slow) {
				t.Errorf("Constant(%g) n=%d: fast %+v != slow %+v", e, n, snap(fast), snap(slow))
			}
		}
	}
}

// TestPeriodicFastForwardBitIdentical drives a Periodic process through an
// arbitrary mix of per-slot and fast-forwarded segments and checks both
// battery totals and the internal phase stay bit-identical to a fully
// sequential twin.
func TestPeriodicFastForwardBitIdentical(t *testing.T) {
	fastProc, err := NewPeriodic(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	slowProc, _ := NewPeriodic(5, 10)
	fast, _ := NewBattery(200, 100)
	slow, _ := NewBattery(200, 100)
	segments := []int64{1, 3, 10, 9, 27, 100, 4, 555, 2}
	var total int64
	for _, n := range segments {
		fastProc.FastForward(fast, n, nil)
		for i := int64(0); i < n; i++ {
			slow.Recharge(slowProc.Next(nil))
		}
		total += n
		if snap(fast) != snap(slow) {
			t.Fatalf("after %d slots: fast %+v != slow %+v", total, snap(fast), snap(slow))
		}
		if fastProc.phase != slowProc.phase {
			t.Fatalf("after %d slots: phase %d != %d", total, fastProc.phase, slowProc.phase)
		}
	}
}

// TestBernoulliFastForwardDegenerate checks the q=0 and q=1 corners, which
// are deterministic and must match a sequential run exactly with no RNG
// consumption.
func TestBernoulliFastForwardDegenerate(t *testing.T) {
	for _, q := range []float64{0, 1} {
		r, err := NewBernoulli(q, 2)
		if err != nil {
			t.Fatal(err)
		}
		fast, _ := NewBattery(500, 100)
		slow, _ := NewBattery(500, 100)
		probe := rng.New(7, 7)
		witness := rng.New(7, 7)
		r.FastForward(fast, 123, probe)
		for i := int64(0); i < 123; i++ {
			slow.Recharge(r.Next(witness))
		}
		if snap(fast) != snap(slow) {
			t.Errorf("q=%g: fast %+v != slow %+v", q, snap(fast), snap(slow))
		}
		if probe.Uint64() != witness.Uint64() {
			t.Errorf("q=%g: degenerate fast-forward consumed randomness", q)
		}
	}
}

// TestBernoulliFastForwardLaw checks the stochastic equivalence contract:
// across many independent runs the fast-forwarded received total matches
// the sequential process in mean, and never disagrees with the Binomial
// support.
func TestBernoulliFastForwardLaw(t *testing.T) {
	const (
		n     = 200
		runs  = 20000
		q, c  = 0.5, 1.0
		capac = 1 << 20 // large enough that nothing overflows
	)
	r, err := NewBernoulli(q, c)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(31, 13)
	var sum, sumSq float64
	for i := 0; i < runs; i++ {
		b, _ := NewBattery(capac, 0)
		r.FastForward(b, n, src)
		got := b.Received() / c
		if got < 0 || got > n || got != math.Trunc(got) {
			t.Fatalf("run %d: delivered count %v outside Binomial(%d, %g) support", i, got, n, q)
		}
		sum += got
		sumSq += got * got
	}
	mean := sum / runs
	wantMean := float64(n) * q
	sigma := math.Sqrt(wantMean * (1 - q) / runs)
	if math.Abs(mean-wantMean) > 5*sigma {
		t.Errorf("mean deliveries %v, want %v +- %v", mean, wantMean, 5*sigma)
	}
	variance := sumSq/runs - mean*mean
	wantVar := float64(n) * q * (1 - q)
	if variance < 0.9*wantVar || variance > 1.1*wantVar {
		t.Errorf("delivery variance %v, want ~%v", variance, wantVar)
	}
}

// TestBernoulliFastForwardOverflowAccounting forces the overflow path and
// checks conservation: received == level-gain + overflow + 0 consumed.
func TestBernoulliFastForwardOverflowAccounting(t *testing.T) {
	r, err := NewBernoulli(0.8, 3)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(5, 5)
	b, _ := NewBattery(10, 4)
	r.FastForward(b, 1000, src)
	if b.Level() != 10 {
		t.Fatalf("battery should be full, level %v", b.Level())
	}
	gain := b.Level() - 4
	if diff := b.Received() - gain - b.OverflowLost(); math.Abs(diff) > 1e-9 {
		t.Fatalf("energy not conserved: received %v, gain %v, overflow %v", b.Received(), gain, b.OverflowLost())
	}
}
