package energy

import (
	"math"
	"testing"
)

// TestBatteryReset checks that Reset restores a used battery to the state
// a fresh construction would produce, including clipping of the initial
// level and clearing of every accumulator.
func TestBatteryReset(t *testing.T) {
	for _, initial := range []float64{-3, 0, 12.5, 50, 120} {
		used, err := NewBattery(100, 50)
		if err != nil {
			t.Fatal(err)
		}
		used.Recharge(70)
		used.Consume(30)
		used.Consume(1000) // denial
		used.Reset(initial)

		fresh, err := NewBattery(100, initial)
		if err != nil {
			t.Fatal(err)
		}
		if used.Level() != fresh.Level() || used.Capacity() != fresh.Capacity() ||
			used.OverflowLost() != fresh.OverflowLost() || used.Denied() != fresh.Denied() ||
			used.Consumed() != fresh.Consumed() || used.Received() != fresh.Received() {
			t.Errorf("Reset(%g): %+v differs from fresh battery %+v", initial, used, fresh)
		}
	}
}

// TestConsumeNMatchesSequentialOnGrid is ConsumeN's exactness contract:
// whenever it reports success, its closed form must reproduce a loop of
// Consume calls bit for bit — level, consumed total, and the absence of
// denials.
func TestConsumeNMatchesSequentialOnGrid(t *testing.T) {
	cases := []struct {
		level, amount float64
		n             int64
	}{
		{100, 1, 64},
		{100, 0.25, 400},
		{100, 7, 14},
		{1 << 20, 0.0009765625, 1 << 18}, // 2^-10 amounts
		{5, 1, 5},                        // drains exactly to zero
		{3, 0, 1000},                     // zero amount is a no-op
	}
	for _, tc := range cases {
		closed, err := NewBattery(1<<21, tc.level)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := NewBattery(1<<21, tc.level)
		if err != nil {
			t.Fatal(err)
		}
		if !closed.ConsumeN(tc.amount, tc.n) {
			t.Fatalf("ConsumeN(%g, %d) from %g rejected a provable case", tc.amount, tc.n, tc.level)
		}
		for i := int64(0); i < tc.n; i++ {
			if !seq.Consume(tc.amount) {
				t.Fatalf("sequential Consume(%g) #%d denied from %g", tc.amount, i, tc.level)
			}
		}
		if closed.Level() != seq.Level() || closed.Consumed() != seq.Consumed() ||
			closed.Denied() != seq.Denied() {
			t.Errorf("ConsumeN(%g, %d) from %g: closed %+v, sequential %+v",
				tc.amount, tc.n, tc.level, closed, seq)
		}
	}
}

// TestConsumeNRejectsUnprovable checks the refusal paths: off-grid
// values, insufficient level, and out-of-range magnitudes must leave the
// battery untouched and return false.
func TestConsumeNRejectsUnprovable(t *testing.T) {
	cases := []struct {
		name          string
		level, amount float64
		n             int64
	}{
		{"off-grid amount", 100, 0.3, 10},
		{"insufficient level", 10, 1, 11},
		{"negative amount", 100, -1, 3},
		{"magnitude bound", 1 << 20, 1 << 19, 1 << 13},
		{"nan amount", 100, math.NaN(), 2},
	}
	for _, tc := range cases {
		b, err := NewBattery(1<<21, tc.level)
		if err != nil {
			t.Fatal(err)
		}
		if b.ConsumeN(tc.amount, tc.n) {
			t.Errorf("%s: ConsumeN(%g, %d) from %g accepted", tc.name, tc.amount, tc.n, tc.level)
			continue
		}
		if b.Level() != tc.level || b.Consumed() != 0 || b.Denied() != 0 {
			t.Errorf("%s: rejected ConsumeN mutated the battery: %+v", tc.name, b)
		}
	}
}
