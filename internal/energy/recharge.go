package energy

import (
	"fmt"
	"math"

	"eventcap/internal/rng"
)

// Recharge produces the per-slot environmental energy e_t (paper Section
// III-A: random with mean e, exact law unknown to the policy). A Recharge
// may be stateful (e.g. Periodic); give each simulated sensor its own
// instance. Implementations are not safe for concurrent use.
type Recharge interface {
	// Next returns the energy harvested in the coming slot.
	Next(src *rng.Source) float64
	// Mean returns the long-run average rate e.
	Mean() float64
	// Name identifies the process, e.g. "Bernoulli(q=0.5,c=1)".
	Name() string
}

// Bernoulli recharges c units with probability q each slot — the paper's
// default recharge model (Fig. 3 "Poisson" curve and all of Figs. 4–6).
type Bernoulli struct {
	q, c float64
	name string
}

var _ Recharge = (*Bernoulli)(nil)

// NewBernoulli constructs the process with per-slot probability q in
// [0, 1] and amount c >= 0.
func NewBernoulli(q, c float64) (*Bernoulli, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("energy: Bernoulli q must be in [0,1], got %g", q)
	}
	if c < 0 || math.IsNaN(c) {
		return nil, fmt.Errorf("energy: Bernoulli c must be >= 0, got %g", c)
	}
	return &Bernoulli{q: q, c: c, name: fmt.Sprintf("Bernoulli(q=%g,c=%g)", q, c)}, nil
}

// Next implements Recharge.
func (b *Bernoulli) Next(src *rng.Source) float64 {
	if src.Bernoulli(b.q) {
		return b.c
	}
	return 0
}

// Mean implements Recharge.
func (b *Bernoulli) Mean() float64 { return b.q * b.c }

// Name implements Recharge.
func (b *Bernoulli) Name() string { return b.name }

// Periodic recharges amount units every period slots (the paper's
// "Periodic" model: 5 units every 10 slots). It is stateful: the phase
// advances on every Next call.
type Periodic struct {
	amount float64
	period int
	phase  int
	name   string
}

var _ Recharge = (*Periodic)(nil)

// NewPeriodic constructs the process delivering amount energy once every
// period slots (on the last slot of each period).
func NewPeriodic(amount float64, period int) (*Periodic, error) {
	if amount < 0 || math.IsNaN(amount) {
		return nil, fmt.Errorf("energy: Periodic amount must be >= 0, got %g", amount)
	}
	if period < 1 {
		return nil, fmt.Errorf("energy: Periodic period must be >= 1, got %d", period)
	}
	return &Periodic{
		amount: amount,
		period: period,
		name:   fmt.Sprintf("Periodic(%g per %d)", amount, period),
	}, nil
}

// Next implements Recharge.
func (p *Periodic) Next(*rng.Source) float64 {
	p.phase++
	if p.phase >= p.period {
		p.phase = 0
		return p.amount
	}
	return 0
}

// Mean implements Recharge.
func (p *Periodic) Mean() float64 { return p.amount / float64(p.period) }

// Name implements Recharge.
func (p *Periodic) Name() string { return p.name }

// Reset restores the initial phase, for reuse across simulation runs.
func (p *Periodic) Reset() { p.phase = 0 }

// Constant recharges the same amount every slot — the paper's "Uniform"
// model (0.5 units per slot).
type Constant struct {
	e    float64
	name string
}

var _ Recharge = (*Constant)(nil)

// NewConstant constructs the deterministic per-slot recharge of e >= 0.
func NewConstant(e float64) (*Constant, error) {
	if e < 0 || math.IsNaN(e) {
		return nil, fmt.Errorf("energy: Constant rate must be >= 0, got %g", e)
	}
	return &Constant{e: e, name: fmt.Sprintf("Constant(%g)", e)}, nil
}

// Next implements Recharge.
func (c *Constant) Next(*rng.Source) float64 { return c.e }

// Mean implements Recharge.
func (c *Constant) Mean() float64 { return c.e }

// Name implements Recharge.
func (c *Constant) Name() string { return c.name }

// ClippedGaussian recharges max(0, N(mu, sigma²)) per slot — an extension
// model for solar-like harvesting noise. Mean accounts for the clipping:
// E[max(0,X)] = mu·Φ(mu/σ) + σ·φ(mu/σ).
type ClippedGaussian struct {
	mu, sigma float64
	mean      float64
	name      string
}

var _ Recharge = (*ClippedGaussian)(nil)

// NewClippedGaussian constructs the process. sigma must be >= 0.
func NewClippedGaussian(mu, sigma float64) (*ClippedGaussian, error) {
	if sigma < 0 || math.IsNaN(sigma) || math.IsNaN(mu) {
		return nil, fmt.Errorf("energy: invalid ClippedGaussian(%g, %g)", mu, sigma)
	}
	g := &ClippedGaussian{
		mu:    mu,
		sigma: sigma,
		name:  fmt.Sprintf("ClippedGaussian(mu=%g,sigma=%g)", mu, sigma),
	}
	if sigma == 0 {
		g.mean = math.Max(0, mu)
	} else {
		z := mu / sigma
		phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
		capPhi := 0.5 * (1 + math.Erf(z/math.Sqrt2))
		g.mean = mu*capPhi + sigma*phi
	}
	return g, nil
}

// Next implements Recharge.
func (g *ClippedGaussian) Next(src *rng.Source) float64 {
	v := g.mu + g.sigma*src.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Mean implements Recharge.
func (g *ClippedGaussian) Mean() float64 { return g.mean }

// Name implements Recharge.
func (g *ClippedGaussian) Name() string { return g.name }

// OnOff is a bursty two-state (Gilbert) recharge process: in the on state
// it delivers amount per slot, in the off state nothing; state flips with
// the given probabilities. It models intermittent sources (cloud cover,
// duty-cycled RF chargers) and stresses the battery's burst absorption.
type OnOff struct {
	amount           float64
	pOnToOff, pOffOn float64
	on               bool
	name             string
}

var _ Recharge = (*OnOff)(nil)

// NewOnOff constructs the process starting in the on state.
func NewOnOff(amount, pOnToOff, pOffToOn float64) (*OnOff, error) {
	if amount < 0 || math.IsNaN(amount) {
		return nil, fmt.Errorf("energy: OnOff amount must be >= 0, got %g", amount)
	}
	for _, p := range []float64{pOnToOff, pOffToOn} {
		if p <= 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("energy: OnOff switch probabilities must be in (0,1], got (%g, %g)", pOnToOff, pOffToOn)
		}
	}
	return &OnOff{
		amount:   amount,
		pOnToOff: pOnToOff,
		pOffOn:   pOffToOn,
		on:       true,
		name:     fmt.Sprintf("OnOff(%g, on->off=%g, off->on=%g)", amount, pOnToOff, pOffToOn),
	}, nil
}

// Next implements Recharge.
func (o *OnOff) Next(src *rng.Source) float64 {
	var out float64
	if o.on {
		out = o.amount
		if src.Bernoulli(o.pOnToOff) {
			o.on = false
		}
	} else if src.Bernoulli(o.pOffOn) {
		o.on = true
	}
	return out
}

// Mean implements Recharge: amount times the stationary on-probability.
func (o *OnOff) Mean() float64 {
	return o.amount * o.pOffOn / (o.pOnToOff + o.pOffOn)
}

// Name implements Recharge.
func (o *OnOff) Name() string { return o.name }

// Reset restores the initial (on) state.
func (o *OnOff) Reset() { o.on = true }
