package energy

import (
	"fmt"
	"math"

	"eventcap/internal/dist"
	"eventcap/internal/rng"
)

// Recharge produces the per-slot environmental energy e_t (paper Section
// III-A: random with mean e, exact law unknown to the policy). A Recharge
// may be stateful (e.g. Periodic); give each simulated sensor its own
// instance. Implementations are not safe for concurrent use.
type Recharge interface {
	// Next returns the energy harvested in the coming slot.
	Next(src *rng.Source) float64
	// Mean returns the long-run average rate e.
	Mean() float64
	// Name identifies the process, e.g. "Bernoulli(q=0.5,c=1)".
	Name() string
}

// FastForwarder is implemented by recharge processes that can apply n
// consecutive slots of recharge to a battery without iterating the slots.
// The simulation kernel uses it to skip zero-activation sleep runs.
//
// The contract: after FastForward(b, n, src) the battery's externally
// visible totals (Level, Received, OverflowLost) must match n sequential
// Recharge(Next(src)) calls — bit-identically for deterministic processes
// (Constant, Periodic, and Bernoulli with q of 0 or 1), and equal in law
// for stochastic ones. Equality in law is sound during a sleep run because
// the level is monotone there: overflow depends only on the delivered
// total, never on where inside the run the deliveries land. Stochastic
// implementations may consume src differently than n Next calls would;
// each sensor owns a dedicated recharge stream, so no other stream shifts.
type FastForwarder interface {
	Recharge
	// FastForward advances the process by n slots, recharging b.
	FastForward(b *Battery, n int64, src *rng.Source)
}

// FastForwardPreparer is optionally implemented by fast-forwardable
// processes that benefit from precomputation. The kernel calls
// PrepareFastForward once per run with the largest sleep-run length it
// expects to batch, before any FastForward call; the hint only affects
// speed, never the sampled law.
type FastForwardPreparer interface {
	FastForwarder
	PrepareFastForward(maxN int)
}

// Bernoulli recharges c units with probability q each slot — the paper's
// default recharge model (Fig. 3 "Poisson" curve and all of Figs. 4–6).
type Bernoulli struct {
	q, c  float64
	name  string
	table *dist.BinomialTable
}

var _ Recharge = (*Bernoulli)(nil)

// NewBernoulli constructs the process with per-slot probability q in
// [0, 1] and amount c >= 0.
func NewBernoulli(q, c float64) (*Bernoulli, error) {
	if q < 0 || q > 1 || math.IsNaN(q) {
		return nil, fmt.Errorf("energy: Bernoulli q must be in [0,1], got %g", q)
	}
	if c < 0 || math.IsNaN(c) {
		return nil, fmt.Errorf("energy: Bernoulli c must be >= 0, got %g", c)
	}
	return &Bernoulli{q: q, c: c, name: fmt.Sprintf("Bernoulli(q=%g,c=%g)", q, c)}, nil
}

// Next implements Recharge.
func (b *Bernoulli) Next(src *rng.Source) float64 {
	if src.Bernoulli(b.q) {
		return b.c
	}
	return 0
}

// Mean implements Recharge.
func (b *Bernoulli) Mean() float64 { return b.q * b.c }

// Name implements Recharge.
func (b *Bernoulli) Name() string { return b.name }

// Q returns the per-slot delivery probability.
func (b *Bernoulli) Q() float64 { return b.q }

// C returns the per-delivery amount.
func (b *Bernoulli) C() float64 { return b.c }

var _ FastForwardPreparer = (*Bernoulli)(nil)

// PrepareFastForward implements FastForwardPreparer: it precomputes
// Binomial CDF tables so each in-range FastForward costs one uniform and
// a binary search instead of per-gap logarithms.
func (b *Bernoulli) PrepareFastForward(maxN int) {
	if b.table == nil || b.table.MaxN() < maxN {
		b.table = dist.NewBinomialTable(b.q, maxN)
	}
}

// FastForward implements FastForwarder. The number of deliveries across n
// independent Bernoulli(q) slots is exactly Binomial(n, q), so one batch
// draw replaces n per-slot draws; degenerate q needs no randomness at all.
func (b *Bernoulli) FastForward(bat *Battery, n int64, src *rng.Source) {
	if n <= 0 {
		return
	}
	var m int64
	switch {
	case b.q <= 0:
		m = 0
	case b.q >= 1:
		m = n
	case b.table != nil:
		m = b.table.Sample(src, n)
	default:
		m = dist.SampleBinomial(src, n, b.q)
	}
	if m == 0 || b.c <= 0 {
		return
	}
	if !bat.RechargeN(b.c, m) {
		for i := int64(0); i < m; i++ {
			bat.Recharge(b.c)
		}
	}
}

// Periodic recharges amount units every period slots (the paper's
// "Periodic" model: 5 units every 10 slots). It is stateful: the phase
// advances on every Next call.
type Periodic struct {
	amount float64
	period int
	phase  int
	name   string
}

var _ Recharge = (*Periodic)(nil)

// NewPeriodic constructs the process delivering amount energy once every
// period slots (on the last slot of each period).
func NewPeriodic(amount float64, period int) (*Periodic, error) {
	if amount < 0 || math.IsNaN(amount) {
		return nil, fmt.Errorf("energy: Periodic amount must be >= 0, got %g", amount)
	}
	if period < 1 {
		return nil, fmt.Errorf("energy: Periodic period must be >= 1, got %d", period)
	}
	return &Periodic{
		amount: amount,
		period: period,
		name:   fmt.Sprintf("Periodic(%g per %d)", amount, period),
	}, nil
}

// Next implements Recharge.
func (p *Periodic) Next(*rng.Source) float64 {
	p.phase++
	if p.phase >= p.period {
		p.phase = 0
		return p.amount
	}
	return 0
}

// Mean implements Recharge.
func (p *Periodic) Mean() float64 { return p.amount / float64(p.period) }

// Name implements Recharge.
func (p *Periodic) Name() string { return p.name }

// Reset restores the initial phase, for reuse across simulation runs.
func (p *Periodic) Reset() { p.phase = 0 }

var _ FastForwarder = (*Periodic)(nil)

// FastForward implements FastForwarder. Across n slots starting at the
// current phase the process delivers floor((phase+n)/period) times; the
// intermediate zero-amount slots are no-ops on the battery, so delivering
// the lump sums back-to-back reproduces the sequential run bit for bit.
func (p *Periodic) FastForward(b *Battery, n int64, _ *rng.Source) {
	if n <= 0 {
		return
	}
	advanced := int64(p.phase) + n
	deliveries := advanced / int64(p.period)
	p.phase = int(advanced % int64(p.period))
	if !b.RechargeN(p.amount, deliveries) {
		for i := int64(0); i < deliveries; i++ {
			b.Recharge(p.amount)
		}
	}
}

// Constant recharges the same amount every slot — the paper's "Uniform"
// model (0.5 units per slot).
type Constant struct {
	e    float64
	name string
}

var _ Recharge = (*Constant)(nil)

// NewConstant constructs the deterministic per-slot recharge of e >= 0.
func NewConstant(e float64) (*Constant, error) {
	if e < 0 || math.IsNaN(e) {
		return nil, fmt.Errorf("energy: Constant rate must be >= 0, got %g", e)
	}
	return &Constant{e: e, name: fmt.Sprintf("Constant(%g)", e)}, nil
}

// Next implements Recharge.
func (c *Constant) Next(*rng.Source) float64 { return c.e }

// Mean implements Recharge.
func (c *Constant) Mean() float64 { return c.e }

// Name implements Recharge.
func (c *Constant) Name() string { return c.name }

var _ FastForwarder = (*Constant)(nil)

// FastForward implements FastForwarder.
func (c *Constant) FastForward(b *Battery, n int64, _ *rng.Source) {
	if n <= 0 {
		return
	}
	if !b.RechargeN(c.e, n) {
		for i := int64(0); i < n; i++ {
			b.Recharge(c.e)
		}
	}
}

// ClippedGaussian recharges max(0, N(mu, sigma²)) per slot — an extension
// model for solar-like harvesting noise. Mean accounts for the clipping:
// E[max(0,X)] = mu·Φ(mu/σ) + σ·φ(mu/σ).
type ClippedGaussian struct {
	mu, sigma float64
	mean      float64
	name      string
}

var _ Recharge = (*ClippedGaussian)(nil)

// NewClippedGaussian constructs the process. sigma must be >= 0.
func NewClippedGaussian(mu, sigma float64) (*ClippedGaussian, error) {
	if sigma < 0 || math.IsNaN(sigma) || math.IsNaN(mu) {
		return nil, fmt.Errorf("energy: invalid ClippedGaussian(%g, %g)", mu, sigma)
	}
	g := &ClippedGaussian{
		mu:    mu,
		sigma: sigma,
		name:  fmt.Sprintf("ClippedGaussian(mu=%g,sigma=%g)", mu, sigma),
	}
	if sigma == 0 {
		g.mean = math.Max(0, mu)
	} else {
		z := mu / sigma
		phi := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
		capPhi := 0.5 * (1 + math.Erf(z/math.Sqrt2))
		g.mean = mu*capPhi + sigma*phi
	}
	return g, nil
}

// Next implements Recharge.
func (g *ClippedGaussian) Next(src *rng.Source) float64 {
	v := g.mu + g.sigma*src.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Mean implements Recharge.
func (g *ClippedGaussian) Mean() float64 { return g.mean }

// Name implements Recharge.
func (g *ClippedGaussian) Name() string { return g.name }

// OnOff is a bursty two-state (Gilbert) recharge process: in the on state
// it delivers amount per slot, in the off state nothing; state flips with
// the given probabilities. It models intermittent sources (cloud cover,
// duty-cycled RF chargers) and stresses the battery's burst absorption.
type OnOff struct {
	amount           float64
	pOnToOff, pOffOn float64
	on               bool
	name             string
}

var _ Recharge = (*OnOff)(nil)

// NewOnOff constructs the process starting in the on state.
func NewOnOff(amount, pOnToOff, pOffToOn float64) (*OnOff, error) {
	if amount < 0 || math.IsNaN(amount) {
		return nil, fmt.Errorf("energy: OnOff amount must be >= 0, got %g", amount)
	}
	for _, p := range []float64{pOnToOff, pOffToOn} {
		if p <= 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("energy: OnOff switch probabilities must be in (0,1], got (%g, %g)", pOnToOff, pOffToOn)
		}
	}
	return &OnOff{
		amount:   amount,
		pOnToOff: pOnToOff,
		pOffOn:   pOffToOn,
		on:       true,
		name:     fmt.Sprintf("OnOff(%g, on->off=%g, off->on=%g)", amount, pOnToOff, pOffToOn),
	}, nil
}

// Next implements Recharge.
func (o *OnOff) Next(src *rng.Source) float64 {
	var out float64
	if o.on {
		out = o.amount
		if src.Bernoulli(o.pOnToOff) {
			o.on = false
		}
	} else if src.Bernoulli(o.pOffOn) {
		o.on = true
	}
	return out
}

// Mean implements Recharge: amount times the stationary on-probability.
func (o *OnOff) Mean() float64 {
	return o.amount * o.pOffOn / (o.pOnToOff + o.pOffOn)
}

// Name implements Recharge.
func (o *OnOff) Name() string { return o.name }

// Reset restores the initial (on) state.
func (o *OnOff) Reset() { o.on = true }
