// Package energy models the rechargeable-sensor energy subsystem: a
// finite energy bucket ("battery") of capacity K and the stochastic
// recharge processes that refill it (paper Section III-A).
//
// Levels are float64 so that fractional recharge rates such as the
// paper's Uniform 0.5 units/slot are represented exactly enough; all
// consumption amounts in the paper (δ1 = 1, δ2 = 6) are integral.
package energy

import (
	"fmt"
	"math"
)

// Battery is the sensor's energy bucket. The zero value is unusable;
// construct with NewBattery. Not safe for concurrent use: each simulated
// sensor owns its battery.
type Battery struct {
	level    float64
	capacity float64

	overflowLost float64
	denied       int64
	consumed     float64
	received     float64
}

// NewBattery creates a battery with the given capacity and initial level.
// The initial level is clipped into [0, capacity]. Capacity must be
// positive.
func NewBattery(capacity, initial float64) (*Battery, error) {
	if !(capacity > 0) {
		return nil, fmt.Errorf("energy: battery capacity must be positive, got %g", capacity)
	}
	if initial < 0 {
		initial = 0
	}
	if initial > capacity {
		initial = capacity
	}
	return &Battery{level: initial, capacity: capacity}, nil
}

// Reset restores the battery to a freshly constructed state with the same
// capacity and the given initial level (clipped into [0, capacity]),
// clearing every accumulator. Batch engines sweep one Battery value across
// many replications with it instead of allocating per replication.
func (b *Battery) Reset(initial float64) {
	if initial < 0 {
		initial = 0
	}
	if initial > b.capacity {
		initial = b.capacity
	}
	b.level = initial
	b.overflowLost = 0
	b.denied = 0
	b.consumed = 0
	b.received = 0
}

// Level returns the current energy level.
func (b *Battery) Level() float64 { return b.level }

// Capacity returns K.
func (b *Battery) Capacity() float64 { return b.capacity }

// Recharge adds amount (>= 0), clipping at capacity. Energy lost to
// overflow is accounted in OverflowLost. Negative amounts are ignored.
func (b *Battery) Recharge(amount float64) {
	if amount <= 0 {
		return
	}
	b.received += amount
	b.level += amount
	if b.level > b.capacity {
		b.overflowLost += b.level - b.capacity
		b.level = b.capacity
	}
}

// CanConsume reports whether the battery holds at least amount.
func (b *Battery) CanConsume(amount float64) bool {
	return b.level >= amount-1e-12
}

// Consume withdraws amount if available and returns true; otherwise it
// leaves the level unchanged, records a denial, and returns false.
func (b *Battery) Consume(amount float64) bool {
	if amount < 0 {
		return false
	}
	if !b.CanConsume(amount) {
		b.denied++
		return false
	}
	b.level -= amount
	if b.level < 0 {
		b.level = 0
	}
	b.consumed += amount
	return true
}

// rechargeGrid is the dyadic grid (multiples of 2^-20) on which RechargeN
// can prove that its closed form reproduces sequential rounding exactly,
// and gridMax bounds every intermediate magnitude so scaled integers stay
// far below 2^53 (sums of two in-range values stay below 2^52 scaled).
const (
	rechargeGrid = 1 << 20
	gridMax      = 1 << 31
)

// onRechargeGrid reports whether v is a nonnegative multiple of 2^-20 no
// larger than gridMax. Sums and differences of such values below gridMax
// are exact in float64, which is what makes RechargeN's closed form
// bit-identical to a sequential loop.
func onRechargeGrid(v float64) bool {
	if v < 0 || v > gridMax || math.IsNaN(v) {
		return false
	}
	s := v * rechargeGrid
	// floateq:ok exactness proof: scaling by a power of two is lossless,
	// so integrality of s decides grid membership with no tolerance.
	return s == math.Trunc(s)
}

// RechargeN applies n consecutive Recharge(amount) calls in O(1). It
// returns false — leaving the battery untouched — when it cannot prove the
// closed form rounds identically to the sequential loop (off-grid values
// or magnitudes near the exactness bound); callers fall back to iterating.
//
// The closed form relies on recharge being monotone: during a pure
// recharge run the level only rises, so the total overflow depends only on
// the delivered total, never on the ordering of deliveries:
// overflow = max(0, level + n·amount − capacity).
func (b *Battery) RechargeN(amount float64, n int64) bool {
	if n <= 0 || amount <= 0 {
		return true // Recharge ignores non-positive amounts
	}
	total := amount * float64(n)
	if float64(n) > gridMax ||
		!onRechargeGrid(amount) || !onRechargeGrid(b.level) ||
		!onRechargeGrid(b.capacity) || !onRechargeGrid(b.received) ||
		!onRechargeGrid(b.overflowLost) ||
		!onRechargeGrid(total) || b.received+total > gridMax ||
		b.level+total > gridMax || b.overflowLost+total > gridMax {
		return false
	}
	b.received += total
	headroom := b.capacity - b.level
	if total <= headroom {
		b.level += total
		return true
	}
	b.overflowLost += total - headroom
	b.level = b.capacity
	return true
}

// ConsumeN applies n consecutive successful Consume(amount) calls in
// O(1). It is the drain-side mirror of RechargeN and makes the same
// promise: true means the closed form provably rounds identically to the
// sequential loop; false leaves the battery untouched and callers fall
// back to iterating. Unlike Consume it never records denials — callers
// must have established level >= n·amount (exactly, on the grid) before
// batching, which the grid checks here re-verify: off-grid values, an
// insufficient level, or magnitudes near the exactness bound all reject.
func (b *Battery) ConsumeN(amount float64, n int64) bool {
	if n <= 0 {
		return true
	}
	if amount < 0 {
		return false
	}
	if amount == 0 {
		// Consume(0) always succeeds and moves nothing; the accumulators
		// add exact zeros.
		return true
	}
	total := amount * float64(n)
	if float64(n) > gridMax ||
		!onRechargeGrid(amount) || !onRechargeGrid(b.level) ||
		!onRechargeGrid(b.consumed) ||
		!onRechargeGrid(total) || b.consumed+total > gridMax ||
		b.level < total {
		return false
	}
	b.level -= total
	b.consumed += total
	return true
}

// OverflowLost returns the total energy discarded because the bucket was
// full — the "burst absorption" loss that shrinks as K grows (Remark 2).
func (b *Battery) OverflowLost() float64 { return b.overflowLost }

// Denied returns how many Consume calls failed for lack of energy.
func (b *Battery) Denied() int64 { return b.denied }

// Consumed returns total energy successfully withdrawn.
func (b *Battery) Consumed() float64 { return b.consumed }

// Received returns total recharge energy offered (including overflow).
func (b *Battery) Received() float64 { return b.received }

// SpanProbe marks a point in the battery's recharge history so the
// energy delivered across a fast-forwarded sleep run can be reported
// (the trace subsystem's span records) without the recharge process
// surfacing its individual draws.
type SpanProbe struct {
	received float64
}

// BeginSpan opens a probe at the current recharge total.
func (b *Battery) BeginSpan() SpanProbe { return SpanProbe{received: b.received} }

// EndSpan returns the recharge energy offered (including overflow)
// since the probe was opened.
func (b *Battery) EndSpan(p SpanProbe) float64 { return b.received - p.received }
