package energy

import (
	"math"
	"testing"
	"testing/quick"

	"eventcap/internal/rng"
)

func TestBatteryBasics(t *testing.T) {
	b, err := NewBattery(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b.Level() != 4 || b.Capacity() != 10 {
		t.Fatal("constructor state wrong")
	}
	if !b.Consume(3) {
		t.Fatal("consume within level failed")
	}
	if b.Level() != 1 {
		t.Fatalf("level %v, want 1", b.Level())
	}
	if b.Consume(2) {
		t.Fatal("consume beyond level succeeded")
	}
	if b.Denied() != 1 {
		t.Fatalf("denied %d, want 1", b.Denied())
	}
	b.Recharge(100)
	if b.Level() != 10 {
		t.Fatalf("level %v, want cap 10", b.Level())
	}
	if math.Abs(b.OverflowLost()-91) > 1e-12 {
		t.Fatalf("overflow %v, want 91", b.OverflowLost())
	}
	if b.Consumed() != 3 || b.Received() != 100 {
		t.Fatal("accounting wrong")
	}
}

func TestBatterySpanProbe(t *testing.T) {
	b, err := NewBattery(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	b.Recharge(2)
	probe := b.BeginSpan()
	if got := b.EndSpan(probe); got != 0 {
		t.Fatalf("empty span delivered %v, want 0", got)
	}
	b.Recharge(3)
	if !b.RechargeN(2, 4) {
		t.Fatal("RechargeN fell back")
	}
	// The probe counts offered energy, so the 3 units lost to overflow
	// (2 + 3 + 8 against capacity 10) still count.
	if got := b.EndSpan(probe); got != 11 {
		t.Fatalf("span delivered %v, want 11", got)
	}
	// Consumption does not disturb the recharge accounting.
	b.Consume(5)
	if got := b.EndSpan(probe); got != 11 {
		t.Fatalf("span delivered after consume %v, want 11", got)
	}
}

func TestBatteryClipsInitial(t *testing.T) {
	b, err := NewBattery(5, 99)
	if err != nil {
		t.Fatal(err)
	}
	if b.Level() != 5 {
		t.Fatalf("initial level %v, want 5", b.Level())
	}
	b2, err := NewBattery(5, -3)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Level() != 0 {
		t.Fatalf("initial level %v, want 0", b2.Level())
	}
}

func TestBatteryRejectsBadCapacity(t *testing.T) {
	for _, capVal := range []float64{0, -1, math.NaN()} {
		if _, err := NewBattery(capVal, 0); err == nil {
			t.Errorf("NewBattery(%v) succeeded", capVal)
		}
	}
}

func TestBatteryIgnoresNegativeFlows(t *testing.T) {
	b, _ := NewBattery(10, 5)
	b.Recharge(-3)
	if b.Level() != 5 {
		t.Fatal("negative recharge changed level")
	}
	if b.Consume(-1) {
		t.Fatal("negative consume succeeded")
	}
}

func TestBatteryInvariantProperty(t *testing.T) {
	// Under arbitrary interleavings, 0 <= level <= capacity and the
	// conservation identity holds: received = level-initial + consumed + overflow.
	if err := quick.Check(func(seed uint64) bool {
		src := rng.New(seed, 0)
		capacity := 1 + src.Float64()*100
		initial := src.Float64() * capacity
		b, err := NewBattery(capacity, initial)
		if err != nil {
			return false
		}
		for i := 0; i < 500; i++ {
			if src.Bernoulli(0.5) {
				b.Recharge(src.Float64() * 10)
			} else {
				b.Consume(src.Float64() * 10)
			}
			if b.Level() < 0 || b.Level() > capacity+1e-9 {
				return false
			}
		}
		balance := initial + b.Received() - b.Consumed() - b.OverflowLost()
		return math.Abs(balance-b.Level()) < 1e-6
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBernoulliRecharge(t *testing.T) {
	r, err := NewBernoulli(0.5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean() != 1 {
		t.Fatalf("mean %v, want 1", r.Mean())
	}
	src := rng.New(5, 0)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.Next(src)
		if v != 0 && v != 2 {
			t.Fatalf("unexpected recharge %v", v)
		}
		sum += v
	}
	if math.Abs(sum/n-1) > 0.02 {
		t.Fatalf("empirical mean %v, want 1", sum/n)
	}
}

func TestBernoulliRejectsBadParams(t *testing.T) {
	for _, qc := range [][2]float64{{-0.1, 1}, {1.1, 1}, {0.5, -1}, {math.NaN(), 1}, {0.5, math.NaN()}} {
		if _, err := NewBernoulli(qc[0], qc[1]); err == nil {
			t.Errorf("NewBernoulli(%v, %v) succeeded", qc[0], qc[1])
		}
	}
}

func TestPeriodicRecharge(t *testing.T) {
	r, err := NewPeriodic(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean() != 0.5 {
		t.Fatalf("mean %v, want 0.5", r.Mean())
	}
	var total float64
	deliveries := 0
	for i := 0; i < 100; i++ {
		v := r.Next(nil)
		total += v
		if v > 0 {
			deliveries++
		}
	}
	if total != 50 || deliveries != 10 {
		t.Fatalf("100 slots delivered %v over %d bursts, want 50 over 10", total, deliveries)
	}
	r.Reset()
	first := -1
	for i := 0; i < 10; i++ {
		if r.Next(nil) > 0 {
			first = i
			break
		}
	}
	if first != 9 {
		t.Fatalf("after reset first delivery at slot %d, want 9", first)
	}
}

func TestPeriodicRejectsBadParams(t *testing.T) {
	if _, err := NewPeriodic(-1, 10); err == nil {
		t.Fatal("negative amount accepted")
	}
	if _, err := NewPeriodic(1, 0); err == nil {
		t.Fatal("zero period accepted")
	}
}

func TestConstantRecharge(t *testing.T) {
	r, err := NewConstant(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Mean() != 0.5 || r.Next(nil) != 0.5 {
		t.Fatal("constant recharge wrong")
	}
	if _, err := NewConstant(-1); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestClippedGaussianMean(t *testing.T) {
	for _, tc := range []struct{ mu, sigma float64 }{{1, 0.3}, {0.5, 1}, {0, 1}, {2, 0}} {
		r, err := NewClippedGaussian(tc.mu, tc.sigma)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(17, 0)
		const n = 400000
		var sum float64
		for i := 0; i < n; i++ {
			v := r.Next(src)
			if v < 0 {
				t.Fatal("negative recharge from clipped gaussian")
			}
			sum += v
		}
		if got := sum / n; math.Abs(got-r.Mean()) > 0.01*(1+r.Mean()) {
			t.Errorf("mu=%v sigma=%v: empirical %v vs analytic %v", tc.mu, tc.sigma, got, r.Mean())
		}
	}
}

func TestClippedGaussianRejectsBadParams(t *testing.T) {
	if _, err := NewClippedGaussian(1, -1); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := NewClippedGaussian(math.NaN(), 1); err == nil {
		t.Fatal("NaN mu accepted")
	}
}

func TestOnOffMean(t *testing.T) {
	r, err := NewOnOff(2, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 0.3 / 0.4
	if math.Abs(r.Mean()-want) > 1e-12 {
		t.Fatalf("mean %v, want %v", r.Mean(), want)
	}
	src := rng.New(23, 0)
	const n = 500000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Next(src)
	}
	if got := sum / n; math.Abs(got-want) > 0.02*want {
		t.Fatalf("empirical mean %v, want %v", got, want)
	}
	r.Reset()
	if r.Next(rng.New(1, 0)) != 2 {
		t.Fatal("after Reset the process must start on")
	}
}

func TestOnOffRejectsBadParams(t *testing.T) {
	for _, tc := range [][3]float64{{-1, 0.5, 0.5}, {1, 0, 0.5}, {1, 0.5, 1.5}} {
		if _, err := NewOnOff(tc[0], tc[1], tc[2]); err == nil {
			t.Errorf("NewOnOff(%v) succeeded", tc)
		}
	}
}
