package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42, 7)
	b := New(42, 7)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}

func TestSeedSensitivity(t *testing.T) {
	a := New(1, 0)
	b := New(2, 0)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestStreamSensitivity(t *testing.T) {
	a := New(1, 0)
	b := New(1, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("streams 0 and 1 collided on %d of 1000 draws", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(9, 0)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split children collided on %d of 1000 draws", same)
	}
}

func TestSplitDeterministic(t *testing.T) {
	mk := func() *Source { return New(5, 3).Split(11) }
	a, b := mk(), mk()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(123, 0)
	for i := 0; i < 100000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(7, 0)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestUint64nUniform(t *testing.T) {
	s := New(99, 4)
	const n, buckets = 100000, 10
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[s.Uint64n(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from expected %v", b, c, want)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	s := New(3, 3)
	if err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		n = n%1000 + 1
		v := s.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n == 0")
		}
	}()
	New(1, 1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n <= 0")
		}
	}()
	New(1, 1).Intn(0)
}

func TestBernoulli(t *testing.T) {
	s := New(21, 0)
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if s.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Errorf("Bernoulli(%v) frequency %v", p, got)
		}
	}
}

func TestBernoulliClamps(t *testing.T) {
	s := New(1, 0)
	if s.Bernoulli(-0.5) {
		t.Error("Bernoulli(-0.5) returned true")
	}
	if !s.Bernoulli(1.5) {
		t.Error("Bernoulli(1.5) returned false")
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := New(8, 0)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v", variance)
	}
}

func TestExpFloat64Moments(t *testing.T) {
	s := New(13, 0)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := s.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Errorf("exponential mean %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(6, 2)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := New(14, 2)
	const n = 50
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i
	}
	s.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	seen := make([]bool, n)
	for _, v := range vals {
		if seen[v] {
			t.Fatalf("shuffle produced duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestShuffleUniformFirstElement(t *testing.T) {
	s := New(15, 2)
	const n, trials = 5, 50000
	counts := make([]int, n)
	for k := 0; k < trials; k++ {
		vals := []int{0, 1, 2, 3, 4}
		s.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		counts[vals[0]]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 6*math.Sqrt(want) {
			t.Errorf("value %d landed first %d times, want ~%v", v, c, want)
		}
	}
}

// TestBitBalance checks that each output bit is set about half the time —
// a cheap smoke test of the output permutation.
func TestBitBalance(t *testing.T) {
	s := New(77, 0)
	const n = 100000
	counts := make([]int, 64)
	for i := 0; i < n; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				counts[b]++
			}
		}
	}
	for b, c := range counts {
		if math.Abs(float64(c)-n/2) > 6*math.Sqrt(n/4) {
			t.Errorf("bit %d set %d of %d times", b, c, n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1, 0)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	s := New(1, 0)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.Float64()
	}
	_ = sink
}

// TestGeometricMatchesLaw: G counts failures before the first success, so
// E[G] = (1-p)/p and P(G=0) = p.
func TestGeometricMatchesLaw(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Geometric(0) did not panic")
		}
	}()
	src := New(5, 9)
	if g := src.Geometric(1); g != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", g)
	}
	for _, p := range []float64{0.05, 0.3, 0.7} {
		const draws = 50000
		var sum float64
		zeros := 0
		for i := 0; i < draws; i++ {
			g := src.Geometric(p)
			if g < 0 {
				t.Fatalf("negative geometric draw %d", g)
			}
			sum += float64(g)
			if g == 0 {
				zeros++
			}
		}
		wantMean := (1 - p) / p
		if mean := sum / draws; math.Abs(mean-wantMean) > 0.05*wantMean+0.01 {
			t.Errorf("p=%g: mean %v, want %v", p, mean, wantMean)
		}
		if z := float64(zeros) / draws; math.Abs(z-p) > 0.02 {
			t.Errorf("p=%g: P(G=0) = %v", p, z)
		}
	}
	src.Geometric(0) // must panic
}
