// Package rng provides a deterministic, splittable pseudo-random number
// generator for simulations.
//
// The generator is PCG-XSL-RR-128/64 (O'Neill, 2014): a 128-bit linear
// congruential core with a 64-bit output permutation. It offers 64-bit
// output, a guaranteed period of 2^128 per stream, and 2^127 independent
// streams selected by the increment. Unlike math/rand's global source it is
// safe to seed per component, so every sensor, recharge process, and event
// generator in a simulation draws from its own stream and results are
// reproducible regardless of goroutine interleaving or evaluation order.
//
// The zero value of Source is not valid; construct sources with New or
// Source.Split.
//
// # Stream layout
//
// Split consumes one draw from the parent, so the ORDER of Split calls
// is part of any byte-identity claim, not just the ids. The simulation
// engines (internal/sim) therefore share one canonical layout rooted at
// New(Config.Seed, 0x5eed), and every fast path reproduces it exactly:
//
//	Split(1)      event inter-arrivals (shared by the whole fleet)
//	Split(2)      activation decisions (shared; round-robin fleets
//	              draw one per awake slot regardless of N)
//	Split(100+s)  sensor s's recharge process, split in s order
//	Split(200+s)  sensor s's private decisions (independent fleets
//	              only; the shared Split(2) is still taken first, and
//	              discarded, so the 1/2/100+s prefix never moves)
//
// The batch engine applies the same layout per replication after
// Reseed(Seed+r, 0x5eed). Adding a consumer means appending a new id
// range after the existing splits — reordering or interleaving the
// table above silently changes every seed's results.
package rng

import (
	"math"
	"math/bits"
)

const (
	// mulHi and mulLo are the 128-bit PCG default multiplier
	// 0x2360ed051fc65da44385df649fccf645 split into 64-bit halves.
	mulHi = 0x2360ed051fc65da4
	mulLo = 0x4385df649fccf645

	// incrementSalt is mixed into derived stream identifiers so that
	// Split(0) of stream k differs from stream k+1.
	incrementSalt = 0x9e3779b97f4a7c15
)

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; give each goroutine its own Source via Split.
type Source struct {
	stateHi, stateLo uint64
	incHi, incLo     uint64
}

// New returns a Source seeded with seed on stream stream. Distinct
// (seed, stream) pairs yield statistically independent sequences.
func New(seed, stream uint64) *Source {
	s := &Source{}
	s.reseed(seed, stream)
	return s
}

// Reseed reinitializes s in place to the sequence New(seed, stream)
// produces, discarding any prior state. It exists for batch engines that
// sweep one Source value across many replication roots without allocating
// per replication. Like New, every call site creates a fresh root stream,
// so the seedflow analyzer audits Reseed calls on simulation paths exactly
// as it audits New.
func (s *Source) Reseed(seed, stream uint64) {
	s.reseed(seed, stream)
}

func (s *Source) reseed(seed, stream uint64) {
	// The increment must be odd; fold the stream id into both halves.
	s.incHi = splitmix(stream)
	s.incLo = splitmix(stream^incrementSalt) | 1
	s.stateHi = 0
	s.stateLo = 0
	s.step()
	s.stateLo += splitmix(seed)
	s.stateHi += splitmix(seed ^ incrementSalt)
	s.step()
}

// splitmix is the SplitMix64 finalizer, used to spread seed entropy.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// step advances the 128-bit LCG state.
func (s *Source) step() {
	hi, lo := bits.Mul64(s.stateLo, mulLo)
	hi += s.stateHi*mulLo + s.stateLo*mulHi
	var carry uint64
	lo, carry = bits.Add64(lo, s.incLo, 0)
	hi, _ = bits.Add64(hi, s.incHi, carry)
	s.stateHi, s.stateLo = hi, lo
}

// Uint64 returns a uniformly distributed 64-bit value.
func (s *Source) Uint64() uint64 {
	s.step()
	// XSL-RR output function: xor-fold the 128-bit state, then rotate by
	// the top 6 bits.
	xored := s.stateHi ^ s.stateLo
	rot := uint(s.stateHi >> 58)
	return bits.RotateLeft64(xored, -int(rot))
}

// Split derives a new independent Source from s, identified by id. Calling
// Split with distinct ids yields distinct streams; the parent's own future
// output is unaffected except for consuming one draw per call.
func (s *Source) Split(id uint64) *Source {
	child := &Source{}
	s.SplitInto(child, id)
	return child
}

// SplitInto writes the child Split(id) would return into child instead of
// allocating, consuming one draw from s exactly as Split does. child may
// be any Source value, including a previously used one; its prior state is
// discarded.
func (s *Source) SplitInto(child *Source, id uint64) {
	child.reseed(s.Uint64(), splitmix(id)^incrementSalt)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p. Values of p outside [0, 1]
// are clamped.
func (s *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.Float64() < p
}

// Uint64n returns a uniform value in [0, n). It panics if n == 0.
// Lemire's multiply-shift rejection method avoids modulo bias.
func (s *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(s.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(s.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// NormFloat64 returns a standard normal variate via the polar
// (Marsaglia) method.
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		q := u*u + v*v
		if q > 0 && q < 1 {
			return u * math.Sqrt(-2*math.Log(q)/q)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1 by inversion.
func (s *Source) ExpFloat64() float64 {
	// 1-Float64() is in (0,1], so the log is finite.
	return -math.Log(1 - s.Float64())
}

// Geometric returns the number of failures before the first success in a
// sequence of Bernoulli(p) trials, drawn by inversion with a single
// uniform: P(G = g) = (1-p)^g p for g >= 0. It panics unless p is in
// (0, 1]. Batch samplers (dist.SampleBinomial) use it to jump between
// successes instead of drawing every trial.
func (s *Source) Geometric(p float64) int64 {
	if p <= 0 || p > 1 || math.IsNaN(p) {
		panic("rng: Geometric needs p in (0, 1]")
	}
	if p == 1 { // floateq:ok exact boundary constant short-circuits the log path
		return 0
	}
	// log1p(-Float64()) is in (-inf, 0]; the ratio floors to g >= 0.
	g := math.Floor(math.Log1p(-s.Float64()) / math.Log1p(-p))
	return int64(g)
}

// Perm returns a pseudo-random permutation of [0, n) as a slice.
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := s.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided
// swap function. It panics if n < 0.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		swap(i, s.Intn(i+1))
	}
}
