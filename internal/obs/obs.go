// Package obs is the observability layer of the simulation stack:
// allocation-free counters, gauges and fixed-bucket histograms that the
// engines, the policy cache and the worker pool record into, exported as
// one expvar map ("eventcap" under /debug/vars).
//
// The package depends only on the standard library (plus the equally
// dependency-free internal/stats report types embedded in run
// manifests), and nothing in it ever draws from a random stream — recording metrics cannot change any
// simulation output (the RNG-neutrality contract of DESIGN.md §9).
// Every metric type is a fixed-size struct updated with atomic
// operations, so the hot paths that record into them allocate nothing.
//
// Metrics are process-cumulative and monotone (gauges excepted); readers
// that want per-phase numbers — like the run manifests cmd/experiments
// writes — take a Snapshot before and after the phase and Diff the two.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"expvar"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// BatteryBins is the number of fixed battery-occupancy bins: bin i
// counts observed slots with level/capacity in [i/BatteryBins,
// (i+1)/BatteryBins), the top bin closed at full.
const BatteryBins = 10

// registry maps metric names to value loaders. All registration happens
// in package init (the metric vars below), but the mutex keeps Snapshot
// safe against any future dynamic registration.
var (
	regMu sync.Mutex
	reg   = make(map[string]func() float64)

	// Family metadata for the Prometheus exposition (prom.go): flat
	// expvar names don't say whether a metric is a counter, a gauge, a
	// binned vector or a latency histogram, so the constructors record
	// it here. Guarded by regMu like reg.
	promCounters []string
	promGauges   []string
	promVecs     []promVecInfo
	promHists    []string
)

// promVecInfo describes one CounterVec family: its base name and bin
// count (bins are registered as "<name>.00" … "<name>.NN").
type promVecInfo struct {
	name string
	n    int
}

func register(name string, load func() float64) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := reg[name]; dup {
		panic("obs: duplicate metric " + name)
	}
	reg[name] = load
}

func recordFamily(list *[]string, name string) {
	regMu.Lock()
	defer regMu.Unlock()
	*list = append(*list, name)
}

func init() {
	// One expvar map for the whole stack; integral values render without
	// a decimal point, so /debug/vars stays readable.
	expvar.Publish("eventcap", expvar.Func(func() any {
		snap := Snapshot()
		out := make(map[string]any, len(snap))
		for k, v := range snap {
			if v == float64(int64(v)) { // floateq:ok exact integrality test for display only
				out[k] = int64(v)
			} else {
				out[k] = v
			}
		}
		return out
	}))
}

// Snapshot returns the current value of every registered metric.
// Counter and gauge values are integral; only float accumulators carry
// fractions. Counter magnitudes stay far below 2^53, so float64 holds
// them exactly and Diff arithmetic is exact.
func Snapshot() map[string]float64 {
	regMu.Lock()
	defer regMu.Unlock()
	out := make(map[string]float64, len(reg))
	for name, load := range reg {
		out[name] = load()
	}
	return out
}

// Diff returns after-minus-before for every key in after. Keys missing
// from before count from zero, matching metrics registered mid-phase.
func Diff(before, after map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(after))
	for k, v := range after {
		out[k] = v - before[k]
	}
	return out
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// NewCounter registers and returns a counter.
func NewCounter(name string) *Counter {
	c := &Counter{}
	register(name, func() float64 { return float64(c.v.Load()) })
	recordFamily(&promCounters, name)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the counter to stay monotone).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous level that can move both ways; it also
// tracks its high-water mark (registered as "<name>.max").
type Gauge struct{ v, max atomic.Int64 }

// NewGauge registers and returns a gauge.
func NewGauge(name string) *Gauge {
	g := &Gauge{}
	register(name, func() float64 { return float64(g.v.Load()) })
	register(name+".max", func() float64 { return float64(g.max.Load()) })
	recordFamily(&promGauges, name)
	recordFamily(&promGauges, name+".max")
	return g
}

// Add moves the gauge by n (negative to decrease) and updates the
// high-water mark.
func (g *Gauge) Add(n int64) {
	nv := g.v.Add(n)
	for {
		m := g.max.Load()
		if nv <= m || g.max.CompareAndSwap(m, nv) {
			return
		}
	}
}

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// FloatCounter is a monotone float accumulator (battery-fraction sums).
type FloatCounter struct{ bits atomic.Uint64 }

// NewFloatCounter registers and returns a float accumulator.
func NewFloatCounter(name string) *FloatCounter {
	f := &FloatCounter{}
	register(name, f.Load)
	recordFamily(&promCounters, name)
	return f
}

// Add accumulates v with a compare-and-swap loop.
func (f *FloatCounter) Add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Load returns the accumulated sum.
func (f *FloatCounter) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// FloatGauge is an instantaneous float level (the stats.* estimates:
// last-published QoM mean and CI half-widths).
type FloatGauge struct{ bits atomic.Uint64 }

// NewFloatGauge registers and returns a float gauge.
func NewFloatGauge(name string) *FloatGauge {
	g := &FloatGauge{}
	register(name, g.Value)
	recordFamily(&promGauges, name)
	return g
}

// Set replaces the gauge's value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// CounterVec is a fixed-length vector of counters (histogram bins),
// registered as "<name>.00" … "<name>.NN".
type CounterVec struct{ bins []Counter }

// NewCounterVec registers and returns an n-bin counter vector.
func NewCounterVec(name string, n int) *CounterVec {
	v := &CounterVec{bins: make([]Counter, n)}
	for i := range v.bins {
		c := &v.bins[i]
		register(fmt.Sprintf("%s.%02d", name, i), func() float64 { return float64(c.Load()) })
	}
	regMu.Lock()
	promVecs = append(promVecs, promVecInfo{name: name, n: n})
	regMu.Unlock()
	return v
}

// Add adds n to bin i (out-of-range bins clamp to the ends).
func (v *CounterVec) Add(i int, n int64) {
	if i < 0 {
		i = 0
	}
	if i >= len(v.bins) {
		i = len(v.bins) - 1
	}
	v.bins[i].Add(n)
}

// Bin returns the count in bin i.
func (v *CounterVec) Bin(i int) int64 { return v.bins[i].Load() }

// durationBuckets are the fixed upper bounds of DurationHist, chosen for
// pool jobs that span simulation runs (milliseconds to minutes).
var durationBuckets = []struct {
	limit time.Duration
	label string
}{
	{time.Millisecond, "le_1ms"},
	{10 * time.Millisecond, "le_10ms"},
	{100 * time.Millisecond, "le_100ms"},
	{time.Second, "le_1s"},
	{10 * time.Second, "le_10s"},
	{100 * time.Second, "le_100s"},
}

// DurationHist is a fixed-bucket latency histogram with a sum and count,
// registered as "<name>.le_1ms" … "<name>.inf", "<name>.sum_ns" and
// "<name>.count".
type DurationHist struct {
	buckets [7]Counter // durationBuckets plus the open top bucket
	sumNs   Counter
	count   Counter
}

// NewDurationHist registers and returns a latency histogram.
func NewDurationHist(name string) *DurationHist {
	h := &DurationHist{}
	recordFamily(&promHists, name)
	for i := range durationBuckets {
		c := &h.buckets[i]
		register(name+"."+durationBuckets[i].label, func() float64 { return float64(c.Load()) })
	}
	register(name+".inf", func() float64 { return float64(h.buckets[len(durationBuckets)].Load()) })
	register(name+".sum_ns", func() float64 { return float64(h.sumNs.Load()) })
	register(name+".count", func() float64 { return float64(h.count.Load()) })
	return h
}

// Observe records one duration.
func (h *DurationHist) Observe(d time.Duration) {
	i := 0
	for ; i < len(durationBuckets); i++ {
		if d <= durationBuckets[i].limit {
			break
		}
	}
	h.buckets[i].Inc()
	h.sumNs.Add(int64(d))
	h.count.Inc()
}

// Count returns how many durations were observed.
func (h *DurationHist) Count() int64 { return h.count.Load() }

// MeanNs returns the mean observed duration in nanoseconds (0 before the
// first observation).
func (h *DurationHist) MeanNs() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNs.Load()) / float64(n)
}

// The process-wide metric set. Naming convention: subsystem-dotted,
// lower_snake leaves, so prefix filters ("sim.", "pool.", "cache.")
// carve the manifest blocks.
var (
	// Engine selection: how many sim.Run calls executed on each engine.
	SimRunsKernel    = NewCounter("sim.runs.kernel")
	SimRunsReference = NewCounter("sim.runs.reference")
	SimRunsBatch     = NewCounter("sim.runs.batch")

	// Engine-fallback diagnostics: why an EngineAuto dispatch declined a
	// fast engine (compiled kernel or mega-batch) and ran an interpreted
	// path instead, keyed by the structural reason. One increment per
	// declined dispatch decision — a batch decline whose replications then
	// fall back individually counts each decline — so slow-path runs are
	// attributable in production instead of silent. The "sim." prefix
	// carries these into the run-manifest metrics block automatically.
	SimFallbackMode     = NewCounter("sim.engine.fallback.mode")
	SimFallbackTrace    = NewCounter("sim.engine.fallback.trace")
	SimFallbackTimeline = NewCounter("sim.engine.fallback.timeline")
	SimFallbackFault    = NewCounter("sim.engine.fallback.fault")
	SimFallbackPolicy   = NewCounter("sim.engine.fallback.policy")
	SimFallbackInfo     = NewCounter("sim.engine.fallback.info")
	SimFallbackRecharge = NewCounter("sim.engine.fallback.recharge")
	SimFallbackTracer   = NewCounter("sim.engine.fallback.tracer")
	SimFallbackMismatch = NewCounter("sim.engine.fallback.mismatch")

	// Per-run metric totals, accumulated by sim.Run when metrics
	// collection is enabled (see sim.Metrics for the definitions).
	SimEvents            = NewCounter("sim.events")
	SimCaptures          = NewCounter("sim.captures")
	SimMissAsleep        = NewCounter("sim.miss.asleep")
	SimMissNoEnergy      = NewCounter("sim.miss.noenergy")
	SimWastedActivations = NewCounter("sim.wasted_activations")
	SimOutageSlots       = NewCounter("sim.outage_slots")
	SimObservedSlots     = NewCounter("sim.observed_slots")
	SimBatteryFracSum    = NewFloatCounter("sim.battery.frac_sum")
	SimBatteryHist       = NewCounterVec("sim.battery.bin", BatteryBins)
	SimKernelRuns        = NewCounter("sim.kernel.ff_runs")
	SimKernelSlots       = NewCounter("sim.kernel.ff_slots")

	// Policy-cache effectiveness (internal/core).
	CachePolicyHits   = NewCounter("cache.policy.hits")
	CachePolicyMisses = NewCounter("cache.policy.misses")

	// Worker-pool health (internal/parallel): queue depth is the pending
	// gauge, concurrency is the in-flight gauge, job latency is the
	// histogram.
	PoolJobsEnqueued = NewCounter("pool.jobs.enqueued")
	PoolJobsDone     = NewCounter("pool.jobs.done")
	PoolJobErrors    = NewCounter("pool.jobs.errors")
	PoolPending      = NewGauge("pool.pending")
	PoolInFlight     = NewGauge("pool.inflight")
	PoolLatency      = NewDurationHist("pool.latency")

	// Streaming-statistics surface: the last QoM confidence interval
	// published by a driver's stats collector (internal/sim's StatsProbe
	// feeds these through the CLI sink). Gauges, not counters — each run
	// overwrites the estimate of the one before it.
	StatsReports         = NewCounter("stats.reports")
	StatsQoMMean         = NewFloatGauge("stats.qom.mean")
	StatsQoMHalfWidth    = NewFloatGauge("stats.qom.half_width")
	StatsQoMRelHalfWidth = NewFloatGauge("stats.qom.rel_half_width")
)

// DigestConfig hashes an ordered list of "key=value" strings into the
// stable config digest recorded in run manifests.
func DigestConfig(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}
