package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeAndCounters(t *testing.T) {
	root := BeginSpan("run")
	compile := root.Child("compile")
	compile.Count("fallback.batch", 1)
	compile.Count("fallback.batch", 2)
	compile.End()
	exec := root.Child("exec")
	exec.Count("slots", 1000)
	exec.End()
	root.End()

	if root.Name() != "run" {
		t.Fatalf("name = %q", root.Name())
	}
	if len(root.children) != 2 {
		t.Fatalf("children = %d, want 2", len(root.children))
	}
	if compile.counters[0].n != 3 {
		t.Fatalf("counter = %d, want 3 (summed)", compile.counters[0].n)
	}
	if compile.lane != root.lane {
		t.Fatal("Child must share the parent's lane")
	}
	if root.Wall() < 0 {
		t.Fatalf("wall = %v", root.Wall())
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	s := BeginSpan("once")
	s.End()
	end := s.end
	time.Sleep(2 * time.Millisecond)
	s.End()
	if !s.end.Equal(end) {
		t.Fatal("second End moved the end time")
	}
}

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	// None of these may panic, and derived spans stay nil.
	c := s.Child("a")
	f := s.Fork("b")
	s.End()
	s.Count("k", 1)
	if c != nil || f != nil {
		t.Fatal("children of nil span must be nil")
	}
	if s.Name() != "" || s.Wall() != 0 || s.Breakdown() != nil {
		t.Fatal("nil span accessors must return zero values")
	}
}

func TestSpanForkConcurrent(t *testing.T) {
	root := BeginSpan("root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f := root.Fork("chunk")
			f.Count("replications", 10)
			f.End()
		}()
	}
	wg.Wait()
	root.End()
	if len(root.children) != 32 {
		t.Fatalf("children = %d, want 32", len(root.children))
	}
	lanes := make(map[int64]bool)
	for _, c := range root.children {
		lanes[c.lane] = true
	}
	if len(lanes) != 32 {
		t.Fatalf("forks share lanes: %d distinct of 32", len(lanes))
	}
}

func TestBreakdownMergesSameNamedSiblings(t *testing.T) {
	root := BeginSpan("run")
	for i := 0; i < 3; i++ {
		f := root.Fork("chunk")
		f.Count("replications", 5)
		sub := f.Child("aggregate")
		sub.End()
		f.End()
	}
	w := root.Child("write")
	w.End()
	root.End()

	ph := root.Breakdown()
	if ph.Name != "run" || ph.Count != 1 {
		t.Fatalf("root phase = %+v", ph)
	}
	if len(ph.Phases) != 2 {
		t.Fatalf("top-level phases = %d, want 2 (chunk, write)", len(ph.Phases))
	}
	chunk := ph.Phases[0]
	if chunk.Name != "chunk" || chunk.Count != 3 {
		t.Fatalf("chunk phase = %+v", chunk)
	}
	if chunk.Counters["replications"] != 15 {
		t.Fatalf("merged counter = %d, want 15", chunk.Counters["replications"])
	}
	if len(chunk.Phases) != 1 || chunk.Phases[0].Name != "aggregate" || chunk.Phases[0].Count != 3 {
		t.Fatalf("merged grandchildren = %+v", chunk.Phases)
	}
	if ph.Phases[1].Name != "write" {
		t.Fatal("first-seen order not preserved")
	}
	if got := chunk.Keys(); len(got) != 1 || got[0] != "replications" {
		t.Fatalf("keys = %v", got)
	}
}

func TestPhaseJSONRoundTrip(t *testing.T) {
	root := BeginSpan("run")
	root.Child("solve").End()
	root.End()
	data, err := json.Marshal(root.Breakdown())
	if err != nil {
		t.Fatal(err)
	}
	var back Phase
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "run" || len(back.Phases) != 1 || back.Phases[0].Name != "solve" {
		t.Fatalf("round trip = %+v", back)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	root := BeginSpan("fig3a")
	c := root.Child("compile")
	c.Count("fallback.batch", 1)
	c.End()
	root.Fork("chunk").End()
	root.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, root, nil); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Ph   string           `json:"ph"`
			Ts   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			Pid  int64            `json:"pid"`
			Tid  int64            `json:"tid"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(doc.TraceEvents))
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
		if ev.Ph != "X" {
			t.Errorf("event %s: ph = %q, want X", ev.Name, ev.Ph)
		}
		if ev.Ts < 0 || ev.Dur < 0 {
			t.Errorf("event %s: ts/dur = %d/%d", ev.Name, ev.Ts, ev.Dur)
		}
		if ev.Pid != 1 {
			t.Errorf("event %s: pid = %d", ev.Name, ev.Pid)
		}
	}
	if len(byName) != 3 {
		t.Fatalf("names = %v", byName)
	}
	root3 := doc.TraceEvents[byName["fig3a"]]
	if doc.TraceEvents[byName["compile"]].Tid != root3.Tid {
		t.Error("compile (Child) should share the root's lane")
	}
	if doc.TraceEvents[byName["chunk"]].Tid == root3.Tid {
		t.Error("chunk (Fork) should get its own lane")
	}
	if got := doc.TraceEvents[byName["compile"]].Args["fallback.batch"]; got != 1 {
		t.Errorf("compile args = %d, want 1", got)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("trace file should end with a newline")
	}
}

func TestSpanMetricsBalance(t *testing.T) {
	begun, ended := SpanBegun.Load(), SpanEnded.Load()
	s := BeginSpan("bal")
	s.Child("c").End()
	s.End()
	if got := SpanBegun.Load() - begun; got != 2 {
		t.Fatalf("span.begun grew by %d, want 2", got)
	}
	if got := SpanEnded.Load() - ended; got != 2 {
		t.Fatalf("span.ended grew by %d, want 2", got)
	}
}
