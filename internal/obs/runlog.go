package obs

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// RunRecord is one wide event in the run journal: everything operations
// needs to answer "what ran, on what engine, how long, and where did
// the time go" about a single driver run, in one JSON line. The same
// record feeds the run registry's completed list (the /debug/runs
// dashboard).
type RunRecord struct {
	// Experiment is the run's id (experiment id, or a CLI run label).
	Experiment string `json:"experiment"`
	Title      string `json:"title,omitempty"`
	// ConfigDigest ties the record to the manifest with the same digest.
	ConfigDigest string `json:"config_digest"`

	// Engine is the engine requested (auto/kernel/reference/batch); the
	// engines actually used are in EnginesUsed.
	Engine  string `json:"engine"`
	Seed    uint64 `json:"seed"`
	Slots   int64  `json:"slots"`
	Batch   int    `json:"batch,omitempty"`
	Workers int    `json:"workers"`
	Quick   bool   `json:"quick,omitempty"`

	// Status is "ok" or "error"; Error carries the failure.
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	WallMillis int64 `json:"wall_ms"`

	// CSV/CSVSHA256 mirror the manifest's output identity (empty when no
	// output file was written).
	CSV       string `json:"csv,omitempty"`
	CSVSHA256 string `json:"csv_sha256,omitempty"`

	// EnginesUsed counts the run's sim.Run calls by executing engine
	// (the "sim.runs.*" diff); Fallbacks counts EngineAuto declines by
	// structural reason (the nonzero "sim.engine.fallback.*" diff).
	EnginesUsed map[string]int64 `json:"engines_used,omitempty"`
	Fallbacks   map[string]int64 `json:"fallbacks,omitempty"`

	// Events/Captures are the run's share of the sim totals.
	Events   int64 `json:"events"`
	Captures int64 `json:"captures"`

	// QoMMean/QoMHalfWidth are the run's streaming QoM estimate and CI
	// half-width (zero when stats collection was off); EarlyStopReps is
	// the replication count a CI-targeted early stop settled on (zero
	// when no early stop ran).
	QoMMean       float64 `json:"qom_mean,omitempty"`
	QoMHalfWidth  float64 `json:"qom_half_width,omitempty"`
	EarlyStopReps int     `json:"early_stop_reps,omitempty"`

	// Phases is the run's span breakdown (the manifest's schema-v3
	// phases block).
	Phases *Phase `json:"phases,omitempty"`
}

// EngineCounts carves a Snapshot diff into the journal's engine
// attribution maps: engine name → sim.Run calls ("sim.runs." keys) and
// fallback reason → declines (nonzero "sim.engine.fallback." keys).
func EngineCounts(diff map[string]float64) (used, fallbacks map[string]int64) {
	for k, v := range diff {
		if v <= 0 {
			continue
		}
		if rest, ok := strings.CutPrefix(k, "sim.runs."); ok {
			if used == nil {
				used = make(map[string]int64)
			}
			used[rest] = int64(v)
		} else if rest, ok := strings.CutPrefix(k, "sim.engine.fallback."); ok {
			if fallbacks == nil {
				fallbacks = make(map[string]int64)
			}
			fallbacks[rest] = int64(v)
		}
	}
	return used, fallbacks
}

// errCaptureWriter wraps the journal file so write failures — which
// slog handlers swallow — surface on the next Record call.
type errCaptureWriter struct {
	f   *os.File
	err error
}

func (w *errCaptureWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p)
	if err != nil && w.err == nil {
		w.err = err
	}
	return n, err
}

// RunLog is an append-only structured run journal: one JSON line per
// driver run (slog wide events), written beside the CSVs so the journal
// travels with the results it describes. Safe for concurrent Record
// calls.
type RunLog struct {
	path string
	mu   sync.Mutex
	w    *errCaptureWriter
	log  *slog.Logger
}

// OpenRunLog opens (appending) or creates the journal at path.
func OpenRunLog(path string) (*RunLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: opening run journal: %w", err)
	}
	w := &errCaptureWriter{f: f}
	return &RunLog{
		path: path,
		w:    w,
		log:  slog.New(slog.NewJSONHandler(w, nil)),
	}, nil
}

// Path returns the journal's file path.
func (l *RunLog) Path() string { return l.path }

// Record appends one run record as a single JSON line. The error
// reports the first underlying write failure, possibly from an earlier
// call (slog handlers do not propagate writer errors synchronously).
func (l *RunLog) Record(rec RunRecord) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.log.LogAttrs(context.Background(), slog.LevelInfo, "run",
		slog.String("experiment", rec.Experiment),
		slog.String("config_digest", rec.ConfigDigest),
		slog.String("engine", rec.Engine),
		slog.Uint64("seed", rec.Seed),
		slog.Int64("slots", rec.Slots),
		slog.Int("batch", rec.Batch),
		slog.Int("workers", rec.Workers),
		slog.Bool("quick", rec.Quick),
		slog.String("status", rec.Status),
		slog.String("error", rec.Error),
		slog.Int64("wall_ms", rec.WallMillis),
		slog.String("csv", rec.CSV),
		slog.String("csv_sha256", rec.CSVSHA256),
		slog.Any("engines_used", rec.EnginesUsed),
		slog.Any("fallbacks", rec.Fallbacks),
		slog.Int64("events", rec.Events),
		slog.Int64("captures", rec.Captures),
		slog.Float64("qom_mean", rec.QoMMean),
		slog.Float64("qom_half_width", rec.QoMHalfWidth),
		slog.Int("early_stop_reps", rec.EarlyStopReps),
		slog.Any("phases", rec.Phases),
	)
	return l.w.err
}

// Close closes the journal file.
func (l *RunLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.w.f.Close(); err != nil {
		return fmt.Errorf("obs: closing run journal: %w", err)
	}
	return l.w.err
}
