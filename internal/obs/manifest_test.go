package obs

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig3a.manifest.json")
	want := &Manifest{
		Experiment:   "fig3a",
		Title:        "Fig 3(a)",
		CSV:          "fig3a.csv",
		CSVSHA256:    SHA256Hex([]byte("x,y\n1,2\n")),
		Config:       ManifestConfig{Slots: 100000, Seed: 3, Quick: true, Workers: 4, Engine: "auto"},
		ConfigDigest: DigestConfig("experiment=fig3a", "seed=3"),
		StartedAt:    "2026-08-05T12:00:00Z",
		WallMillis:   1234,
		GoVersion:    GoVersion(),
		Metrics:      map[string]float64{"sim.events": 10, "sim.captures": 7},
		Process:      map[string]float64{"pool.jobs.done": 5},
		Profiles:     map[string]string{"cpu": "cpu.prof"},
		Trace:        &TraceInfo{File: "fig3a.evtrace", SHA256: SHA256Hex(nil), Mode: "full", Runs: 2, Records: 40},
		Phases: &Phase{
			Name: "fig3a", Count: 1, WallMicros: 1234000,
			Counters: map[string]int64{"slots": 100000},
			Phases:   []*Phase{{Name: "solve", Count: 1, WallMicros: 200000}},
		},
		Journal: "runs.jsonl",
	}
	// Write fills Schema and BinaryVersion-style fields as given.
	if err := want.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	want.Schema = ManifestSchema // filled in by Write
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\ngot  %+v\nwant %+v", got, want)
	}
}

func TestReadManifestAcceptsOlderSchemas(t *testing.T) {
	dir := t.TempDir()
	for _, schema := range []string{ManifestSchemaV1, ManifestSchemaV2} {
		path := filepath.Join(dir, strings.ReplaceAll(schema, "/", "_")+".manifest.json")
		m := &Manifest{Schema: schema, Experiment: "fig3a", CSV: "fig3a.csv"}
		if err := m.Write(path); err != nil {
			t.Fatal(err)
		}
		got, err := ReadManifest(path)
		if err != nil {
			t.Fatalf("%s manifest rejected: %v", schema, err)
		}
		// Older manifests simply lack the newer optional blocks.
		if got.Schema != schema || got.Trace != nil || got.Phases != nil || got.Journal != "" {
			t.Fatalf("%s manifest misread: %+v", schema, got)
		}
	}
}

func TestReadManifestRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.manifest.json")
	m := &Manifest{Schema: "eventcap/run-manifest/v999", Experiment: "x", CSV: "x.csv"}
	if err := m.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(path); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("wrong schema accepted: %v", err)
	}
}

func TestSHA256Hex(t *testing.T) {
	// Known vector: SHA-256 of the empty string.
	if got := SHA256Hex(nil); got != "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" {
		t.Fatalf("SHA256Hex(nil) = %s", got)
	}
}

func TestBinaryVersionNonEmpty(t *testing.T) {
	if v := BinaryVersion(); v == "" {
		t.Fatal("BinaryVersion is empty")
	}
	if v := GoVersion(); !strings.HasPrefix(v, "go") {
		t.Fatalf("GoVersion = %q", v)
	}
}
