package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Progress tracks a batch of pool jobs for live sweep reporting. It
// implements the parallel package's Observer shape (Enqueued / Started /
// Finished) without importing it, so the dependency points pool → obs.
//
// Totals only grow: a sweep that runs several experiments keeps one
// Progress across all of them, and the rendered line reflects
// everything enqueued so far. Only driver-level jobs reach the observer
// — engine-internal fan-out (batch chunks, per-sensor fleet jobs) runs
// on parallel.MapInner, which skips observer callbacks, so job counts
// and the ETA are not inflated by nested pools.
//
// Beyond jobs, drivers report slot-level work units (AddWork /
// FinishWork): one unit per simulated slot, B×T for a batch run and
// N×T for an N-sensor fleet, so the line carries a slots/s throughput
// and the ETA can weight jobs by their true size under -batch and fig6
// fleets.
type Progress struct {
	total   atomic.Int64
	started atomic.Int64
	done    atomic.Int64
	errs    atomic.Int64
	busyNs  atomic.Int64 // summed job wall time, for the mean-latency display
	startNs atomic.Int64 // first-enqueue timestamp (UnixNano), set once

	workTotal atomic.Int64 // slot units declared by started simulations
	workDone  atomic.Int64 // slot units completed

	nowFunc func() time.Time
}

// NewProgress returns a Progress reporting wall time with time.Now.
func NewProgress() *Progress { return &Progress{nowFunc: time.Now} }

func (p *Progress) now() time.Time {
	if p.nowFunc == nil {
		return time.Now()
	}
	return p.nowFunc()
}

// Enqueued records n jobs entering a pool.
func (p *Progress) Enqueued(n int) {
	p.total.Add(int64(n))
	p.startNs.CompareAndSwap(0, p.now().UnixNano())
}

// Started records one job beginning execution.
func (p *Progress) Started() { p.started.Add(1) }

// Finished records one job completing after d.
func (p *Progress) Finished(d time.Duration, err error) {
	p.busyNs.Add(int64(d))
	if err != nil {
		p.errs.Add(1)
	}
	p.done.Add(1)
}

// AddWork declares n slot units of upcoming work (a simulation's
// Slots × replications × sensors). Nil-safe so instrumented call sites
// need no branches.
func (p *Progress) AddWork(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.workTotal.Add(n)
	p.startNs.CompareAndSwap(0, p.now().UnixNano())
}

// FinishWork marks n previously-declared slot units complete.
func (p *Progress) FinishWork(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.workDone.Add(n)
}

// Done returns jobs finished and jobs enqueued so far.
func (p *Progress) Done() (done, total int64) {
	return p.done.Load(), p.total.Load()
}

// Work returns slot units finished and declared so far.
func (p *Progress) Work() (done, total int64) {
	return p.workDone.Load(), p.workTotal.Load()
}

// humanCount renders a slot count compactly (2.5M, 340k, 900).
func humanCount(n float64) string {
	switch {
	case n >= 1e9:
		return fmt.Sprintf("%.3gG", n/1e9)
	case n >= 1e6:
		return fmt.Sprintf("%.3gM", n/1e6)
	case n >= 1e3:
		return fmt.Sprintf("%.3gk", n/1e3)
	default:
		return fmt.Sprintf("%.0f", n)
	}
}

// Line renders one status line: jobs done/total, percentage, mean job
// latency, slot throughput, and an ETA from the observed wall-clock
// completion rate — elapsed × remaining/completed, measured over
// whole driver-level jobs, so the achieved parallelism is priced in
// automatically (the fixed mean×remaining/workers formula undercounted
// whenever jobs differ in size, as batch replications and fleet runs
// do). It never allocates beyond the returned string, so a ticker can
// call it freely.
func (p *Progress) Line() string {
	done, total := p.done.Load(), p.total.Load()
	if total == 0 {
		return "progress: no jobs enqueued yet"
	}
	pct := 100 * float64(done) / float64(total)
	line := fmt.Sprintf("progress: %d/%d jobs (%.0f%%)", done, total, pct)
	if done > 0 {
		mean := time.Duration(p.busyNs.Load() / done)
		line += fmt.Sprintf(", avg %s/job", mean.Round(time.Millisecond))
	}
	var elapsed time.Duration
	if s := p.startNs.Load(); s != 0 {
		elapsed = p.now().Sub(time.Unix(0, s))
	}
	wd, wt := p.workDone.Load(), p.workTotal.Load()
	if wd > 0 {
		line += fmt.Sprintf(", %s slots", humanCount(float64(wd)))
		if sec := elapsed.Seconds(); sec > 0 {
			line += fmt.Sprintf(" @ %s/s", humanCount(float64(wd)/sec))
		}
	}
	// Two ETA estimates, take the larger: whole-job extrapolation
	// (elapsed × remaining/completed) covers jobs not yet started but
	// needs a completed job; the slot-unit rate covers declared,
	// partially-finished work — a half-done 10⁷-slot batch point that
	// whole-job extrapolation cannot see inside, and the only estimate
	// available while a single -batch job is still in flight.
	var eta time.Duration
	if rem := total - done; rem > 0 && done > 0 {
		eta = time.Duration(float64(elapsed) * float64(rem) / float64(done))
	}
	if wd > 0 && wt > wd && elapsed > 0 {
		if wb := time.Duration(float64(elapsed) * float64(wt-wd) / float64(wd)); wb > eta {
			eta = wb
		}
	}
	if eta > 0 && done < total {
		line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	}
	if e := p.errs.Load(); e > 0 {
		line += fmt.Sprintf(", %d failed", e)
	}
	return line
}
