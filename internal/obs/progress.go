package obs

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Progress tracks a batch of pool jobs for live sweep reporting. It
// implements the parallel package's Observer shape (Enqueued / Started /
// Finished) without importing it, so the dependency points pool → obs.
//
// Totals only grow: a sweep that fans out nested pools (pilot runs
// inside sweep points) keeps one Progress across all of them, and the
// rendered line reflects everything enqueued so far.
type Progress struct {
	total   atomic.Int64
	started atomic.Int64
	done    atomic.Int64
	errs    atomic.Int64
	busyNs  atomic.Int64 // summed job wall time, for the ETA estimate
	startNs atomic.Int64 // first-enqueue timestamp (UnixNano), set once
	nowFunc func() time.Time
}

// NewProgress returns a Progress reporting wall time with time.Now.
func NewProgress() *Progress { return &Progress{nowFunc: time.Now} }

func (p *Progress) now() time.Time {
	if p.nowFunc == nil {
		return time.Now()
	}
	return p.nowFunc()
}

// Enqueued records n jobs entering a pool.
func (p *Progress) Enqueued(n int) {
	p.total.Add(int64(n))
	p.startNs.CompareAndSwap(0, p.now().UnixNano())
}

// Started records one job beginning execution.
func (p *Progress) Started() { p.started.Add(1) }

// Finished records one job completing after d.
func (p *Progress) Finished(d time.Duration, err error) {
	p.busyNs.Add(int64(d))
	if err != nil {
		p.errs.Add(1)
	}
	p.done.Add(1)
}

// Done returns jobs finished and jobs enqueued so far.
func (p *Progress) Done() (done, total int64) {
	return p.done.Load(), p.total.Load()
}

// Line renders one status line: jobs done/total, percentage, mean job
// latency, and a crude ETA assuming the remaining jobs run `workers`
// wide at the mean latency seen so far. It never allocates beyond the
// returned string, so a ticker can call it freely.
func (p *Progress) Line(workers int) string {
	done, total := p.done.Load(), p.total.Load()
	if total == 0 {
		return "progress: no jobs enqueued yet"
	}
	pct := 100 * float64(done) / float64(total)
	var mean time.Duration
	if done > 0 {
		mean = time.Duration(p.busyNs.Load() / done)
	}
	line := fmt.Sprintf("progress: %d/%d jobs (%.0f%%)", done, total, pct)
	if done > 0 {
		line += fmt.Sprintf(", avg %s/job", mean.Round(time.Millisecond))
	}
	if rem := total - done; rem > 0 && done > 0 && workers > 0 {
		eta := time.Duration(int64(mean) * rem / int64(workers))
		line += fmt.Sprintf(", eta %s", eta.Round(time.Second))
	}
	if e := p.errs.Load(); e > 0 {
		line += fmt.Sprintf(", %d failed", e)
	}
	return line
}
