package obs

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	c := NewCounter("test.counter")
	if c.Load() != 0 {
		t.Fatalf("fresh counter = %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("counter = %d, want 42", c.Load())
	}
	if got := Snapshot()["test.counter"]; got != 42 {
		t.Fatalf("snapshot = %v, want 42", got)
	}
}

func TestGaugeTracksHighWater(t *testing.T) {
	g := NewGauge("test.gauge")
	g.Add(3)
	g.Add(4)
	g.Add(-5)
	if g.Load() != 2 {
		t.Fatalf("gauge = %d, want 2", g.Load())
	}
	if g.Max() != 7 {
		t.Fatalf("gauge max = %d, want 7", g.Max())
	}
	snap := Snapshot()
	if snap["test.gauge"] != 2 || snap["test.gauge.max"] != 7 {
		t.Fatalf("snapshot gauge=%v max=%v", snap["test.gauge"], snap["test.gauge.max"])
	}
}

func TestFloatCounter(t *testing.T) {
	f := NewFloatCounter("test.float")
	f.Add(0.25)
	f.Add(0.5)
	if got := f.Load(); got != 0.75 {
		t.Fatalf("float counter = %v, want 0.75", got)
	}
}

func TestCounterVecClampsBins(t *testing.T) {
	v := NewCounterVec("test.vec", 3)
	v.Add(0, 1)
	v.Add(2, 2)
	v.Add(-5, 10) // clamps to bin 0
	v.Add(99, 20) // clamps to bin 2
	if v.Bin(0) != 11 || v.Bin(1) != 0 || v.Bin(2) != 22 {
		t.Fatalf("bins = %d/%d/%d", v.Bin(0), v.Bin(1), v.Bin(2))
	}
	if got := Snapshot()["test.vec.02"]; got != 22 {
		t.Fatalf("snapshot bin 2 = %v", got)
	}
}

func TestDurationHistBuckets(t *testing.T) {
	h := NewDurationHist("test.hist")
	h.Observe(500 * time.Microsecond) // le_1ms
	h.Observe(5 * time.Millisecond)   // le_10ms
	h.Observe(2 * time.Second)        // le_10s
	h.Observe(time.Hour)              // inf
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	snap := Snapshot()
	for key, want := range map[string]float64{
		"test.hist.le_1ms":  1,
		"test.hist.le_10ms": 1,
		"test.hist.le_10s":  1,
		"test.hist.inf":     1,
		"test.hist.le_1s":   0,
		"test.hist.count":   4,
	} {
		if snap[key] != want {
			t.Errorf("%s = %v, want %v", key, snap[key], want)
		}
	}
	wantMean := float64(500*time.Microsecond+5*time.Millisecond+2*time.Second+time.Hour) / 4
	if got := h.MeanNs(); got != wantMean {
		t.Fatalf("mean = %v ns, want %v", got, wantMean)
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	NewCounter("test.dup")
	NewCounter("test.dup")
}

func TestDiffCountsFromSnapshot(t *testing.T) {
	c := NewCounter("test.diff")
	c.Add(10)
	before := Snapshot()
	c.Add(7)
	d := Diff(before, Snapshot())
	if d["test.diff"] != 7 {
		t.Fatalf("diff = %v, want 7", d["test.diff"])
	}
	// A key absent from before counts from zero.
	d2 := Diff(map[string]float64{}, map[string]float64{"x": 3})
	if d2["x"] != 3 {
		t.Fatalf("diff with missing before = %v", d2["x"])
	}
}

func TestFilterPrefix(t *testing.T) {
	snap := map[string]float64{"sim.events": 1, "sim.captures": 2, "pool.jobs.done": 3, "cache.policy.hits": 4}
	sim := FilterPrefix(snap, "sim.")
	if len(sim) != 2 || sim["sim.events"] != 1 {
		t.Fatalf("sim filter = %v", sim)
	}
	proc := FilterPrefix(snap, "cache.", "pool.")
	if len(proc) != 2 || proc["pool.jobs.done"] != 3 || proc["cache.policy.hits"] != 4 {
		t.Fatalf("process filter = %v", proc)
	}
}

func TestDigestConfigStableAndSeparatorSafe(t *testing.T) {
	a := DigestConfig("experiment=fig3a", "seed=1")
	if a != DigestConfig("experiment=fig3a", "seed=1") {
		t.Fatal("digest not deterministic")
	}
	if !strings.HasPrefix(a, "sha256:") {
		t.Fatalf("digest %q missing prefix", a)
	}
	if a == DigestConfig("experiment=fig3a", "seed=2") {
		t.Fatal("digest ignores part values")
	}
	// The NUL separator must keep part boundaries from aliasing.
	if DigestConfig("ab", "c") == DigestConfig("a", "bc") {
		t.Fatal("digest aliases across part boundaries")
	}
}

func TestProgressLine(t *testing.T) {
	now := time.Unix(1000, 0)
	p := &Progress{nowFunc: func() time.Time { return now }}
	if got := p.Line(); got != "progress: no jobs enqueued yet" {
		t.Fatalf("empty line = %q", got)
	}
	p.Enqueued(8)
	p.Started()
	p.Finished(100*time.Millisecond, nil)
	p.Started()
	p.Finished(300*time.Millisecond, fmt.Errorf("boom"))
	done, total := p.Done()
	if done != 2 || total != 8 {
		t.Fatalf("done/total = %d/%d", done, total)
	}
	// 2/8 jobs completed in 2s of wall time → the whole-job
	// extrapolation prices the remaining 6 at 2s × 6/2 = 6s.
	now = now.Add(2 * time.Second)
	line := p.Line()
	for _, want := range []string{"2/8 jobs", "25%", "avg 200ms/job", "eta 6s", "1 failed"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestProgressWorkUnitsDriveThroughputAndETA(t *testing.T) {
	now := time.Unix(2000, 0)
	p := &Progress{nowFunc: func() time.Time { return now }}
	p.Enqueued(1)
	p.Started()
	p.AddWork(4_000_000)
	p.FinishWork(1_000_000)
	if wd, wt := p.Work(); wd != 1_000_000 || wt != 4_000_000 {
		t.Fatalf("work = %d/%d", wd, wt)
	}
	// No job has finished, so the whole-job estimate is silent; the
	// slot-unit rate (1M slots in 10s, 3M left) still yields an ETA.
	now = now.Add(10 * time.Second)
	line := p.Line()
	for _, want := range []string{"0/1 jobs", "1M slots", "@ 100k/s", "eta 30s"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestProgressETATakesLargerEstimate(t *testing.T) {
	now := time.Unix(3000, 0)
	p := &Progress{nowFunc: func() time.Time { return now }}
	p.Enqueued(2)
	p.Started()
	p.Finished(time.Second, nil)
	p.AddWork(10_000_000)
	p.FinishWork(1_000_000)
	now = now.Add(4 * time.Second)
	// Job estimate: 4s × 1/1 = 4s. Slot estimate: 4s × 9M/1M = 36s.
	if line := p.Line(); !strings.Contains(line, "eta 36s") {
		t.Errorf("line %q: want the larger (slot-unit) eta 36s", line)
	}
}

func TestProgressWorkNilSafe(t *testing.T) {
	var p *Progress
	p.AddWork(5)    // must not panic
	p.FinishWork(5) // must not panic
}

func TestHumanCount(t *testing.T) {
	for n, want := range map[float64]string{
		900:           "900",
		12_500:        "12.5k",
		1_000_000:     "1M",
		2_500_000_000: "2.5G",
	} {
		if got := humanCount(n); got != want {
			t.Errorf("humanCount(%v) = %q, want %q", n, got, want)
		}
	}
}

func TestServeMetricsExposesVarsAndPprof(t *testing.T) {
	marker := NewCounter("test.serve.marker")
	marker.Add(123)
	addr, stop, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := stop(); err != nil {
			t.Errorf("stop: %v", err)
		}
	}()
	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	vars := get("/debug/vars")
	if !strings.Contains(vars, `"eventcap"`) || !strings.Contains(vars, `"test.serve.marker":123`) {
		t.Errorf("/debug/vars missing eventcap metrics:\n%.400s", vars)
	}
	if idx := get("/debug/pprof/"); !strings.Contains(idx, "goroutine") {
		t.Errorf("/debug/pprof/ index missing profiles:\n%.400s", idx)
	}
}
