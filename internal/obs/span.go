package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Span metrics: how many spans the process opened and closed. A steady
// gap between the two on a live /debug/vars is a leak (a phase that
// never calls End).
var (
	SpanBegun = NewCounter("span.begun")
	SpanEnded = NewCounter("span.ended")
)

// spanLane allocates Chrome-trace lanes ("tid" rows): sequential phases
// share their parent's lane, concurrent forks get fresh ones, so the
// trace viewer stacks parallel work instead of overlapping it.
var spanLane atomic.Int64

// Span is one timed phase of a pipeline: begun with a monotonic clock,
// ended once, carrying named counters and child spans. Spans wrap
// phases — a policy solve, a kernel compile, a chunk of batch
// replications — never per-slot work, so the tracer stays within the
// slot-loop overhead budget of DESIGN.md §9 by construction.
//
// Like every obs type, spans never draw from a random stream: attaching
// a span tree to a simulation cannot change any output byte (the
// RNG-neutrality contract, asserted by TestSpansDoNotChangeResults).
//
// All methods are safe on a nil *Span and do nothing, so instrumented
// code needs no "is tracing on" branches: a nil parent yields nil
// children, and a disabled pipeline pays only nil checks.
type Span struct {
	name  string
	lane  int64
	start time.Time

	mu       sync.Mutex
	end      time.Time // zero while the span is open
	counters []spanCounter
	children []*Span
}

// spanCounter keeps per-span counters in first-touch order, so exports
// are deterministic without sorting on the hot path.
type spanCounter struct {
	key string
	n   int64
}

// BeginSpan starts a root span on a fresh lane.
func BeginSpan(name string) *Span {
	SpanBegun.Inc()
	return &Span{name: name, lane: spanLane.Add(1), start: time.Now()}
}

func (s *Span) newChild(name string, lane int64) *Span {
	if s == nil {
		return nil
	}
	SpanBegun.Inc()
	c := &Span{name: name, lane: lane, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Child starts a sub-span on the parent's lane: use it for sequential
// phases (compile, then execute, then aggregate). Nil-safe.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.newChild(name, s.lane)
}

// Fork starts a sub-span on a fresh lane: use it for concurrent phases
// (batch chunks, sweep points fanned across the pool), which may call
// Fork from multiple goroutines at once. Nil-safe.
func (s *Span) Fork(name string) *Span {
	if s == nil {
		return nil
	}
	return s.newChild(name, spanLane.Add(1))
}

// End closes the span at the current monotonic clock. Idempotent: only
// the first End sets the duration. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
		SpanEnded.Inc()
	}
	s.mu.Unlock()
}

// Count adds n to the span's named counter (created on first use).
// Nil-safe; callable from the span's own goroutine only, or after
// synchronization — counters are guarded by the span's mutex.
func (s *Span) Count(key string, n int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	for i := range s.counters {
		if s.counters[i].key == key {
			s.counters[i].n += n
			s.mu.Unlock()
			return
		}
	}
	s.counters = append(s.counters, spanCounter{key, n})
	s.mu.Unlock()
}

// Name returns the span's name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Wall returns the span's duration: end−start once ended, time since
// start while open, 0 on nil.
func (s *Span) Wall() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// Phase is the exported, aggregated view of a span subtree: same-named
// sibling spans merge into one Phase (summed wall time and counters,
// recursively merged children), so a batch run's 40 "chunk" forks
// export as one phase with Count 40 rather than 40 manifest entries.
// This is the manifest's schema-v3 "phases" block and the dashboard's
// phase-bar source.
type Phase struct {
	Name string `json:"name"`
	// Count is how many spans merged into this phase.
	Count int64 `json:"count"`
	// WallMicros is the summed wall time of the merged spans, µs.
	WallMicros int64            `json:"wall_us"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Phases     []*Phase         `json:"phases,omitempty"`
}

// Breakdown exports the span's subtree as a merged Phase tree. Open
// descendants contribute their wall time so far.
func (s *Span) Breakdown() *Phase {
	if s == nil {
		return nil
	}
	merged := mergePhases([]*Span{s})
	return merged[0]
}

// mergePhases groups spans by name in first-seen order and merges each
// group into one Phase.
func mergePhases(spans []*Span) []*Phase {
	var order []string
	groups := make(map[string][]*Span)
	for _, sp := range spans {
		if _, seen := groups[sp.name]; !seen {
			order = append(order, sp.name)
		}
		groups[sp.name] = append(groups[sp.name], sp)
	}
	out := make([]*Phase, 0, len(order))
	for _, name := range order {
		group := groups[name]
		ph := &Phase{Name: name, Count: int64(len(group))}
		var kids []*Span
		for _, sp := range group {
			ph.WallMicros += sp.Wall().Microseconds()
			sp.mu.Lock()
			for _, c := range sp.counters {
				if ph.Counters == nil {
					ph.Counters = make(map[string]int64)
				}
				ph.Counters[c.key] += c.n
			}
			kids = append(kids, sp.children...)
			sp.mu.Unlock()
		}
		if len(kids) > 0 {
			ph.Phases = mergePhases(kids)
		}
		out = append(out, ph)
	}
	return out
}

// Keys returns the phase's counter keys, sorted (helper for stable
// rendering; the JSON encoder already sorts map keys).
func (p *Phase) Keys() []string {
	keys := make([]string, 0, len(p.Counters))
	for k := range p.Counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// chromeEvent is one Trace Event Format entry: a "complete" event
// (ph "X") with microsecond timestamp and duration, as consumed by
// chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Ts   int64            `json:"ts"`
	Dur  int64            `json:"dur"`
	Pid  int64            `json:"pid"`
	Tid  int64            `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

// WriteChromeTrace writes the span trees rooted at roots as Chrome
// trace-event JSON: one complete event per span, timestamps relative to
// the earliest root's start, lanes as thread ids. Load the file in
// chrome://tracing or https://ui.perfetto.dev. Open spans are emitted
// with their duration so far.
func WriteChromeTrace(w io.Writer, roots ...*Span) error {
	var base time.Time
	for _, r := range roots {
		if r == nil {
			continue
		}
		if base.IsZero() || r.start.Before(base) {
			base = r.start
		}
	}
	var events []chromeEvent
	var walk func(sp *Span)
	walk = func(sp *Span) {
		ev := chromeEvent{
			Name: sp.name,
			Ph:   "X",
			Ts:   sp.start.Sub(base).Microseconds(),
			Dur:  sp.Wall().Microseconds(),
			Pid:  1,
			Tid:  sp.lane,
		}
		sp.mu.Lock()
		if len(sp.counters) > 0 {
			ev.Args = make(map[string]int64, len(sp.counters))
			for _, c := range sp.counters {
				ev.Args[c.key] = c.n
			}
		}
		kids := append([]*Span(nil), sp.children...)
		sp.mu.Unlock()
		events = append(events, ev)
		for _, c := range kids {
			walk(c)
		}
	}
	for _, r := range roots {
		if r != nil {
			walk(r)
		}
	}
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: events}
	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return fmt.Errorf("obs: marshaling chrome trace: %w", err)
	}
	if _, err := w.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("obs: writing chrome trace: %w", err)
	}
	return nil
}
