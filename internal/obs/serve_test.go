package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxServesVars(t *testing.T) {
	// The counter registry is package-global, so any previously
	// registered metric works; register one unique to this test.
	c := NewCounter("testserve.hits")
	c.Add(3)
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", resp.StatusCode)
	}
	var body struct {
		Eventcap map[string]json.Number `json:"eventcap"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding /debug/vars: %v", err)
	}
	if got := body.Eventcap["testserve.hits"]; got.String() != "3" {
		t.Fatalf("testserve.hits = %q, want 3", got)
	}
}

func TestDebugMuxServesPprofIndex(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), "goroutine") {
		t.Fatalf("/debug/pprof/ status=%d body=%.80s", resp.StatusCode, data)
	}
}

func TestHandleDebugRegistersRoute(t *testing.T) {
	HandleDebug("/debug/testserve", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("custom-route-ok"))
	}))
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/testserve")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if string(data) != "custom-route-ok" {
		t.Fatalf("custom debug route body = %q", data)
	}

	// Re-registration replaces the handler (last wins), so repeated CLI
	// runs in one process can re-arm their routes. The replacement shows
	// up in muxes built after the call.
	HandleDebug("/debug/testserve", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("replaced"))
	}))
	srv2 := httptest.NewServer(DebugMux())
	defer srv2.Close()
	resp2, err := http.Get(srv2.URL + "/debug/testserve")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data2, _ := io.ReadAll(resp2.Body)
	if string(data2) != "replaced" {
		t.Fatalf("replaced debug route body = %q", data2)
	}
}

func TestServeMetricsIncludesDebugHandlers(t *testing.T) {
	HandleDebug("/debug/testserve2", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("live-server-ok"))
	}))
	addr, stop, err := ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + addr + "/debug/testserve2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if string(data) != "live-server-ok" {
		t.Fatalf("ServeMetrics custom route body = %q", data)
	}
}
