package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"

	"eventcap/internal/stats"
)

// ManifestSchema identifies the manifest format; bump on breaking field
// changes. v4 adds the optional streaming-statistics block (QoM CI and
// early-stop decision); v3 added the phase-breakdown and journal
// fields; v2 added the trace block. All predecessors remain readable.
const ManifestSchema = "eventcap/run-manifest/v4"

// ManifestSchemaV3 is the previous schema version, still accepted by
// ReadManifest (v4 only adds optional fields).
const ManifestSchemaV3 = "eventcap/run-manifest/v3"

// ManifestSchemaV2 is the schema version before v3, still accepted by
// ReadManifest.
const ManifestSchemaV2 = "eventcap/run-manifest/v2"

// ManifestSchemaV1 is the original schema version, still accepted by
// ReadManifest.
const ManifestSchemaV1 = "eventcap/run-manifest/v1"

// ManifestConfig is the experiment configuration block: everything
// needed to reproduce the CSV bit-for-bit (together with the binary
// version).
type ManifestConfig struct {
	Slots   int64  `json:"slots"`
	Seed    uint64 `json:"seed"`
	Quick   bool   `json:"quick"`
	Workers int    `json:"workers"`
	// Engine is the engine *requested* (auto/kernel/reference); the
	// engines actually used are in the metrics block
	// (sim.runs.kernel / sim.runs.reference).
	Engine string `json:"engine"`
}

// Manifest is the JSON sidecar written next to every experiment CSV: a
// reproducibility and audit record tying the output bytes to the exact
// configuration, code version, and the energy accounting behind the
// figure.
type Manifest struct {
	Schema     string `json:"schema"`
	Experiment string `json:"experiment"`
	Title      string `json:"title,omitempty"`

	// CSV is the sibling output file (base name) and CSVSHA256 its
	// content hash at write time.
	CSV       string `json:"csv"`
	CSVSHA256 string `json:"csv_sha256"`

	Config       ManifestConfig `json:"config"`
	ConfigDigest string         `json:"config_digest"`

	StartedAt  string `json:"started_at"`
	WallMillis int64  `json:"wall_ms"`

	GoVersion     string `json:"go_version"`
	BinaryVersion string `json:"binary_version"`

	// Metrics is the experiment's share of the run-level counters
	// ("sim." prefix): events, captures, the miss decomposition, battery
	// occupancy, and kernel fast-forward work. Captures + miss.asleep +
	// miss.noenergy always equals events.
	Metrics map[string]float64 `json:"metrics"`
	// Process is the experiment's share of the process-level counters
	// ("cache." and "pool." prefixes).
	Process map[string]float64 `json:"process"`

	// Profiles points at pprof files recorded during the run, when
	// profiling was requested. Profiles cover the whole process run, not
	// just this experiment.
	Profiles map[string]string `json:"profiles,omitempty"`

	// Trace describes the slot-level trace captured alongside the CSV,
	// when tracing was requested (schema v2).
	Trace *TraceInfo `json:"trace,omitempty"`

	// Phases is the run's span breakdown — where the wall time went,
	// phase by phase (schema v3). See Span.Breakdown.
	Phases *Phase `json:"phases,omitempty"`

	// Journal is the base name of the run journal holding this run's
	// wide-event record, when one was written (schema v3).
	Journal string `json:"journal,omitempty"`

	// Stats is the run's streaming QoM report — point estimate,
	// confidence interval, truncation — pooled over the experiment's
	// sim runs when there were several (schema v4).
	Stats *stats.Report `json:"stats,omitempty"`

	// EarlyStop records the CI-targeted early-stop decision when the run
	// used one (schema v4).
	EarlyStop *EarlyStopInfo `json:"early_stop,omitempty"`
}

// EarlyStopInfo mirrors sim.StopDecision for the manifest (obs cannot
// import sim): the monitor's inputs, the replication count the run
// settled on, and the relative half-width it reached. Stopped is false
// when the run exhausted its replication budget instead.
type EarlyStopInfo struct {
	TargetRelHW  float64 `json:"target_rel_hw"`
	MinReps      int     `json:"min_reps"`
	MaxReps      int     `json:"max_reps"`
	Reps         int     `json:"reps"`
	RelHalfWidth float64 `json:"rel_half_width"`
	Stopped      bool    `json:"stopped"`
}

// TraceInfo ties a manifest to its trace file: cmd/tracetool's replay
// subcommand re-derives the metrics block from the trace named here and
// verifies both the hash and the totals.
type TraceInfo struct {
	// File is the trace's base name (sibling of the manifest, like CSV).
	File string `json:"file"`
	// SHA256 is the content hash of the complete trace file.
	SHA256 string `json:"sha256"`
	// Mode records what was attached: "full", "flight", or "full+flight".
	Mode string `json:"mode"`
	// Runs/Records/Spans are the writer's frame counts, for quick sanity
	// checks without opening the trace.
	Runs    int64 `json:"runs"`
	Records int64 `json:"records"`
	Spans   int64 `json:"spans"`
}

// FilterPrefix returns the subset of snap whose keys start with any of
// the given prefixes (for carving Snapshot diffs into manifest blocks).
func FilterPrefix(snap map[string]float64, prefixes ...string) map[string]float64 {
	out := make(map[string]float64)
	for k, v := range snap {
		for _, p := range prefixes {
			if len(k) >= len(p) && k[:len(p)] == p {
				out[k] = v
				break
			}
		}
	}
	return out
}

// Write marshals the manifest to path with a trailing newline.
func (m *Manifest) Write(path string) error {
	if m.Schema == "" {
		m.Schema = ManifestSchema
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("obs: marshaling manifest: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: writing manifest: %w", err)
	}
	return nil
}

// ReadManifest loads and validates a manifest written by Write.
func ReadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: reading manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("obs: parsing manifest %s: %w", path, err)
	}
	switch m.Schema {
	case ManifestSchema, ManifestSchemaV3, ManifestSchemaV2, ManifestSchemaV1:
	default:
		return nil, fmt.Errorf("obs: manifest %s has schema %q, want %q, %q, %q or %q",
			path, m.Schema, ManifestSchema, ManifestSchemaV3, ManifestSchemaV2, ManifestSchemaV1)
	}
	return &m, nil
}

// SHA256Hex returns the lowercase hex SHA-256 of data.
func SHA256Hex(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// GoVersion returns the running toolchain version.
func GoVersion() string { return runtime.Version() }

// BinaryVersion identifies the built binary: the VCS revision when the
// build embedded one (plus a "+dirty" marker), otherwise the main
// module's version, otherwise "unknown".
func BinaryVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	var rev, modified string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				modified = "+dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return rev + modified
	}
	if v := info.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	return "devel"
}
