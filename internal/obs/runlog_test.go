package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunLogRecordsJSONLines(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenRunLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.Path() != path {
		t.Fatalf("path = %q", l.Path())
	}
	ok := RunRecord{
		Experiment:   "fig3a",
		ConfigDigest: "sha256:abc",
		Engine:       "auto",
		Seed:         1,
		Slots:        100_000,
		Workers:      4,
		Status:       "ok",
		WallMillis:   1234,
		CSV:          "fig3a.csv",
		CSVSHA256:    "sha256:def",
		EnginesUsed:  map[string]int64{"kernel": 30},
		Events:       5000,
		Captures:     2500,
		Phases:       &Phase{Name: "fig3a", Count: 1, WallMicros: 42},
	}
	if err := l.Record(ok); err != nil {
		t.Fatal(err)
	}
	if err := l.Record(RunRecord{Experiment: "fig3b", Status: "error", Error: "boom"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var lines []map[string]any
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v\n%s", err, sc.Text())
		}
		lines = append(lines, m)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("journal lines = %d, want 2", len(lines))
	}
	first := lines[0]
	if first["msg"] != "run" || first["experiment"] != "fig3a" || first["status"] != "ok" {
		t.Fatalf("first line = %v", first)
	}
	if first["wall_ms"] != float64(1234) || first["captures"] != float64(2500) {
		t.Fatalf("first line numerics = %v", first)
	}
	if _, hasTime := first["time"]; !hasTime {
		t.Fatal("slog line missing timestamp")
	}
	if eng, _ := first["engines_used"].(map[string]any); eng["kernel"] != float64(30) {
		t.Fatalf("engines_used = %v", first["engines_used"])
	}
	if ph, _ := first["phases"].(map[string]any); ph["name"] != "fig3a" {
		t.Fatalf("phases = %v", first["phases"])
	}
	if lines[1]["status"] != "error" || lines[1]["error"] != "boom" {
		t.Fatalf("second line = %v", lines[1])
	}
}

func TestRunLogAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	for i := 0; i < 2; i++ {
		l, err := OpenRunLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Record(RunRecord{Experiment: "x", Status: "ok"}); err != nil {
			t.Fatal(err)
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(data, []byte("\n")); n != 2 {
		t.Fatalf("reopened journal has %d lines, want 2 (append, not truncate)", n)
	}
}

func TestEngineCounts(t *testing.T) {
	used, fb := EngineCounts(map[string]float64{
		"sim.runs.kernel":              30,
		"sim.runs.batch":               2,
		"sim.runs.reference":           0, // zero entries are dropped
		"sim.engine.fallback.tracer":   3,
		"sim.engine.fallback.periodic": 0,
		"sim.events":                   9999, // unrelated keys ignored
	})
	if len(used) != 2 || used["kernel"] != 30 || used["batch"] != 2 {
		t.Fatalf("used = %v", used)
	}
	if len(fb) != 1 || fb["tracer"] != 3 {
		t.Fatalf("fallbacks = %v", fb)
	}
	used, fb = EngineCounts(nil)
	if used != nil || fb != nil {
		t.Fatalf("empty diff should yield nil maps, got %v / %v", used, fb)
	}
}
