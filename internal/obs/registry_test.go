package obs

import (
	"fmt"
	"sync"
	"testing"
)

func TestRegistryBeginComplete(t *testing.T) {
	r := NewRegistry()
	a := r.Begin("fig3a", "sha256:1", nil, nil)
	b := r.Begin("fig3b", "sha256:2", nil, nil)
	active := r.ActiveRuns()
	if len(active) != 2 || active[0].Name != "fig3a" || active[1].Name != "fig3b" {
		t.Fatalf("active = %v", active)
	}

	a.Complete(RunRecord{Experiment: "fig3a", Status: "ok"})
	b.Complete(RunRecord{Experiment: "fig3b", Status: "error", Error: "boom"})
	if len(r.ActiveRuns()) != 0 {
		t.Fatal("completed runs still active")
	}
	done := r.CompletedRuns()
	if len(done) != 2 {
		t.Fatalf("completed = %d", len(done))
	}
	// Most recent first.
	if done[0].Record.Experiment != "fig3b" || done[1].Record.Experiment != "fig3a" {
		t.Fatalf("completed order = %s, %s", done[0].Record.Experiment, done[1].Record.Experiment)
	}
	if done[0].Finished.IsZero() {
		t.Fatal("completed run missing finish time")
	}
}

func TestRegistryCompleteIdempotentAndNilSafe(t *testing.T) {
	r := NewRegistry()
	a := r.Begin("x", "", nil, nil)
	a.Complete(RunRecord{Experiment: "x", Status: "ok"})
	a.Complete(RunRecord{Experiment: "x", Status: "error"}) // no-op
	if done := r.CompletedRuns(); len(done) != 1 || done[0].Record.Status != "ok" {
		t.Fatalf("completed = %v", done)
	}
	var nilRun *ActiveRun
	nilRun.Complete(RunRecord{}) // must not panic
}

func TestRegistryCompletedRingBounded(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < completedRingSize+10; i++ {
		a := r.Begin(fmt.Sprintf("run%d", i), "", nil, nil)
		a.Complete(RunRecord{Experiment: fmt.Sprintf("run%d", i), Status: "ok"})
	}
	done := r.CompletedRuns()
	if len(done) != completedRingSize {
		t.Fatalf("ring = %d, want %d", len(done), completedRingSize)
	}
	if done[0].Record.Experiment != fmt.Sprintf("run%d", completedRingSize+9) {
		t.Fatalf("newest = %s", done[0].Record.Experiment)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := r.Begin(fmt.Sprintf("run%d", i), "", nil, nil)
			a.Complete(RunRecord{Experiment: fmt.Sprintf("run%d", i), Status: "ok"})
		}(i)
	}
	wg.Wait()
	if n := len(r.ActiveRuns()); n != 0 {
		t.Fatalf("active after all complete = %d", n)
	}
	if n := len(r.CompletedRuns()); n != 50 {
		t.Fatalf("completed = %d, want 50", n)
	}
}

func TestRegistryMetrics(t *testing.T) {
	reg, act, comp := RunsRegistered.Load(), RunsActive.Load(), RunsCompleted.Load()
	r := NewRegistry()
	a := r.Begin("m", "", nil, nil)
	if RunsActive.Load() != act+1 {
		t.Fatalf("runs.active = %d, want %d", RunsActive.Load(), act+1)
	}
	a.Complete(RunRecord{Experiment: "m", Status: "ok"})
	if RunsRegistered.Load() != reg+1 || RunsActive.Load() != act || RunsCompleted.Load() != comp+1 {
		t.Fatalf("metrics = %d/%d/%d", RunsRegistered.Load(), RunsActive.Load(), RunsCompleted.Load())
	}
}
