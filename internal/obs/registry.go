package obs

import (
	"sort"
	"strings"
	"sync"
	"time"

	"eventcap/internal/stats"
)

// Registry metrics: runs registered since process start, currently
// active (with high-water mark), and completed.
var (
	RunsRegistered = NewCounter("runs.registered")
	RunsActive     = NewGauge("runs.active")
	RunsCompleted  = NewCounter("runs.completed")
)

// completedRingSize bounds the registry's completed-run history; older
// entries fall off (the journal on disk keeps the full record).
const completedRingSize = 64

// Registry tracks the process's runs for the /debug/runs dashboard:
// active runs (with their live Progress and span tree) and a bounded
// ring of completed ones (their final RunRecords). A driver Begins a
// run before executing it and Completes it with the same record it
// journals; the long-running daemon of ROADMAP's
// simulation-as-a-service item gets its status surface from this type.
type Registry struct {
	mu        sync.Mutex
	nextID    int64
	active    map[int64]*ActiveRun
	completed []CompletedRun // oldest first, capped at completedRingSize
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{active: make(map[int64]*ActiveRun)}
}

// DefaultRegistry is the process-wide registry served at /debug/runs by
// DebugMux.
var DefaultRegistry = NewRegistry()

// ActiveRun is one in-flight run. Progress and Span are optional live
// views (nil when the driver doesn't track them); Stats is always
// present — it just stays empty until the driver publishes into it.
type ActiveRun struct {
	reg *Registry
	id  int64

	Name     string
	Digest   string
	Started  time.Time
	Progress *Progress
	Span     *Span
	Stats    *StatsView
}

// statsViewRing bounds the convergence history kept per active run.
const statsViewRing = 32

// sparkRunes are the eight block levels of the convergence sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// StatsView is an active run's live streaming-statistics surface: the
// last interim stats.Report its sink published, plus a bounded history
// of relative CI half-widths that the dashboard renders as a
// convergence sparkline. Safe for concurrent Publish (the run's
// goroutine) and reads (the dashboard handler).
type StatsView struct {
	mu    sync.Mutex
	last  stats.Report
	has   bool
	relHW []float64
}

// Publish records an interim report and mirrors it into the stats.*
// gauges, so a driver's StatsSink needs exactly one call per report.
func (v *StatsView) Publish(r stats.Report) {
	if v == nil {
		return
	}
	v.mu.Lock()
	v.last, v.has = r, true
	if r.RelHalfWidth > 0 {
		v.relHW = append(v.relHW, r.RelHalfWidth)
		if len(v.relHW) > statsViewRing {
			v.relHW = v.relHW[len(v.relHW)-statsViewRing:]
		}
	}
	v.mu.Unlock()
	StatsReports.Inc()
	StatsQoMMean.Set(r.Mean)
	StatsQoMHalfWidth.Set(r.HalfWidth)
	StatsQoMRelHalfWidth.Set(r.RelHalfWidth)
}

// Last returns the most recent published report, if any.
func (v *StatsView) Last() (stats.Report, bool) {
	if v == nil {
		return stats.Report{}, false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.last, v.has
}

// Sparkline renders the relative-half-width history oldest-to-newest,
// scaled against the window maximum — a converging run reads as bars
// stepping down toward ▁. Empty until a report carries a CI.
func (v *StatsView) Sparkline() string {
	if v == nil {
		return ""
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	max := 0.0
	for _, x := range v.relHW {
		if x > max {
			max = x
		}
	}
	if max <= 0 {
		return ""
	}
	var b strings.Builder
	for _, x := range v.relHW {
		i := int(x / max * float64(len(sparkRunes)-1))
		if i < 0 {
			i = 0
		}
		if i >= len(sparkRunes) {
			i = len(sparkRunes) - 1
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// CompletedRun is one finished run: when it finished and its final
// journal record.
type CompletedRun struct {
	Finished time.Time
	Record   RunRecord
}

// Begin registers an in-flight run. prog and span may be nil.
func (r *Registry) Begin(name, digest string, prog *Progress, span *Span) *ActiveRun {
	a := &ActiveRun{
		reg:      r,
		Name:     name,
		Digest:   digest,
		Started:  time.Now(),
		Progress: prog,
		Span:     span,
		Stats:    &StatsView{},
	}
	r.mu.Lock()
	r.nextID++
	a.id = r.nextID
	r.active[a.id] = a
	r.mu.Unlock()
	RunsRegistered.Inc()
	RunsActive.Add(1)
	return a
}

// Complete moves the run from active to the completed ring with its
// final record. Nil-safe and idempotent (the second call is a no-op),
// so error paths can Complete unconditionally.
func (a *ActiveRun) Complete(rec RunRecord) {
	if a == nil {
		return
	}
	r := a.reg
	r.mu.Lock()
	if _, ok := r.active[a.id]; !ok {
		r.mu.Unlock()
		return
	}
	delete(r.active, a.id)
	r.completed = append(r.completed, CompletedRun{Finished: time.Now(), Record: rec})
	if len(r.completed) > completedRingSize {
		r.completed = r.completed[len(r.completed)-completedRingSize:]
	}
	r.mu.Unlock()
	RunsActive.Add(-1)
	RunsCompleted.Inc()
}

// ActiveRuns returns the in-flight runs in registration order.
func (r *Registry) ActiveRuns() []*ActiveRun {
	r.mu.Lock()
	out := make([]*ActiveRun, 0, len(r.active))
	for _, a := range r.active {
		out = append(out, a)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// CompletedRuns returns the completed ring, most recent first.
func (r *Registry) CompletedRuns() []CompletedRun {
	r.mu.Lock()
	out := make([]CompletedRun, len(r.completed))
	for i, c := range r.completed {
		out[len(r.completed)-1-i] = c
	}
	r.mu.Unlock()
	return out
}
