package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) of the eventcap
// metric set, stdlib-only. The expvar map under /debug/vars is the
// source of truth; this file is a pure renaming and re-shaping of the
// same Snapshot:
//
//   - dots become underscores under an "eventcap_" prefix
//     (sim.runs.kernel → eventcap_sim_runs_kernel);
//   - Counter and FloatCounter render as counter families, Gauge (and
//     its ".max" high-water mark) and FloatGauge as gauges;
//   - CounterVec bins collapse into one family with a bin="NN" label;
//   - DurationHist renders as a native histogram family: cumulative
//     _bucket{le="…"} series with bounds in seconds, _sum in seconds,
//     and _count. The internal buckets are NON-cumulative (Observe
//     increments only the first fitting bucket), so the translation
//     accumulates them here.
//
// Families are emitted in sorted name order so the exposition is
// byte-stable for a fixed Snapshot — scrape diffs stay readable.

// promName converts a dotted expvar metric name to a Prometheus metric
// name under the eventcap_ prefix.
func promName(name string) string {
	return "eventcap_" + strings.ReplaceAll(name, ".", "_")
}

// promVal formats a sample value the way Prometheus parsers expect.
func promVal(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// histBucketSuffixes pairs each DurationHist bucket's expvar suffix
// with its Prometheus le bound in seconds, in ascending order.
var histBucketSuffixes = []struct {
	suffix string
	le     string
}{
	{".le_1ms", "0.001"},
	{".le_10ms", "0.01"},
	{".le_100ms", "0.1"},
	{".le_1s", "1"},
	{".le_10s", "10"},
	{".le_100s", "100"},
	{".inf", "+Inf"},
}

// WritePrometheus renders the current metric snapshot in Prometheus
// text-exposition format.
func WritePrometheus(w io.Writer) error {
	snap := Snapshot()
	regMu.Lock()
	counters := append([]string(nil), promCounters...)
	gauges := append([]string(nil), promGauges...)
	vecs := append([]promVecInfo(nil), promVecs...)
	hists := append([]string(nil), promHists...)
	regMu.Unlock()

	// One render closure per family keyed by exposition name, emitted in
	// sorted order.
	type family struct {
		name   string
		render func(io.Writer) error
	}
	fams := make([]family, 0, len(counters)+len(gauges)+len(vecs)+len(hists))
	scalar := func(name, typ string) family {
		pn := promName(name)
		v := snap[name]
		return family{name: pn, render: func(w io.Writer) error {
			_, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %s\n", pn, typ, pn, promVal(v))
			return err
		}}
	}
	for _, name := range counters {
		fams = append(fams, scalar(name, "counter"))
	}
	for _, name := range gauges {
		fams = append(fams, scalar(name, "gauge"))
	}
	for _, vec := range vecs {
		pn := promName(vec.name)
		name, n := vec.name, vec.n
		fams = append(fams, family{name: pn, render: func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", pn); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				v := snap[fmt.Sprintf("%s.%02d", name, i)]
				if _, err := fmt.Fprintf(w, "%s{bin=\"%02d\"} %s\n", pn, i, promVal(v)); err != nil {
					return err
				}
			}
			return nil
		}})
	}
	for _, name := range hists {
		pn := promName(name)
		hn := name
		fams = append(fams, family{name: pn, render: func(w io.Writer) error {
			if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
				return err
			}
			cum := 0.0
			for _, b := range histBucketSuffixes {
				cum += snap[hn+b.suffix]
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %s\n", pn, b.le, promVal(cum)); err != nil {
					return err
				}
			}
			_, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %s\n",
				pn, promVal(snap[hn+".sum_ns"]/1e9), pn, promVal(snap[hn+".count"]))
			return err
		}})
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if err := f.render(w); err != nil {
			return err
		}
	}
	return nil
}

// PrometheusHandler serves WritePrometheus over HTTP; DebugMux mounts
// it at /metrics, so any -metrics-addr debug server is scrapeable.
func PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
