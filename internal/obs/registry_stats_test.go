package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestStatsViewSparklineConverges(t *testing.T) {
	v := &StatsView{}
	if _, ok := v.Last(); ok {
		t.Fatal("empty view reported a last report")
	}
	if v.Sparkline() != "" {
		t.Fatalf("empty view sparkline = %q", v.Sparkline())
	}
	for _, hw := range []float64{0.32, 0.16, 0.08, 0.04} {
		v.Publish(exampleReport(0.8, hw))
	}
	last, ok := v.Last()
	if !ok || last.HalfWidth != 0.04 {
		t.Fatalf("last = %+v ok=%v, want half-width 0.04", last, ok)
	}
	spark := []rune(v.Sparkline())
	if len(spark) != 4 {
		t.Fatalf("sparkline %q, want 4 bars", string(spark))
	}
	// Halving half-widths must render as non-increasing bars ending at
	// the lowest level.
	for i := 1; i < len(spark); i++ {
		if spark[i] > spark[i-1] {
			t.Fatalf("sparkline %q not converging", string(spark))
		}
	}
	if spark[0] != sparkRunes[len(sparkRunes)-1] || spark[3] != sparkRunes[0] {
		t.Fatalf("sparkline %q, want full-to-lowest ramp", string(spark))
	}

	// A nil view (run without stats) is a safe no-op everywhere.
	var nilView *StatsView
	nilView.Publish(exampleReport(0.5, 0.1))
	if _, ok := nilView.Last(); ok || nilView.Sparkline() != "" {
		t.Fatal("nil StatsView not inert")
	}
}

func TestStatsViewRingBounded(t *testing.T) {
	v := &StatsView{}
	for i := 0; i < 3*statsViewRing; i++ {
		v.Publish(exampleReport(0.8, 0.1))
	}
	if n := len([]rune(v.Sparkline())); n != statsViewRing {
		t.Fatalf("ring grew to %d bars, cap %d", n, statsViewRing)
	}
}

// TestDashboardShowsQoM drives the /debug/runs handler end to end: an
// active run with published stats shows its CI band and sparkline, a
// completed record its final estimate.
func TestDashboardShowsQoM(t *testing.T) {
	reg := NewRegistry()
	a := reg.Begin("dash-stats", "sha256:feed", nil, nil)
	a.Stats.Publish(exampleReport(0.8125, 0.0625))
	a.Stats.Publish(exampleReport(0.8125, 0.0312))

	done := reg.Begin("dash-done", "sha256:dead", nil, nil)
	done.Complete(RunRecord{
		Experiment:   "dash-done",
		Status:       "ok",
		Engine:       "kernel",
		QoMMean:      0.75,
		QoMHalfWidth: 0.01,
	})

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(data)
	if !strings.Contains(body, "0.8125 ± 0.0312") {
		t.Errorf("active run CI band missing from dashboard:\n%s", body)
	}
	if !strings.ContainsRune(body, sparkRunes[len(sparkRunes)-1]) {
		t.Errorf("active run sparkline missing from dashboard")
	}
	if !strings.Contains(body, "0.7500 ± 0.0100") {
		t.Errorf("completed run CI band missing from dashboard")
	}
	a.Complete(RunRecord{Experiment: "dash-stats", Status: "ok"})
}
