package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"eventcap/internal/stats"
)

// exampleReport builds a minimal replication report with a CI.
func exampleReport(mean, hw float64) stats.Report {
	return stats.Report{
		Method:       stats.MethodReplication,
		Mean:         mean,
		Level:        stats.DefaultCILevel,
		HalfWidth:    hw,
		RelHalfWidth: hw / mean,
	}
}

// promBody scrapes /metrics through the debug mux and returns the body.
func promBody(t *testing.T) string {
	t.Helper()
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func wantLine(t *testing.T, body, line string) {
	t.Helper()
	if !strings.Contains(body, line+"\n") {
		t.Errorf("exposition is missing %q", line)
	}
}

func TestPrometheusScalars(t *testing.T) {
	c := NewCounter("promtest.hits")
	c.Add(41)
	g := NewGauge("promtest.depth")
	g.Add(5)
	g.Add(-2)
	f := NewFloatGauge("promtest.level")
	f.Set(0.125)

	body := promBody(t)
	wantLine(t, body, "# TYPE eventcap_promtest_hits counter")
	wantLine(t, body, "eventcap_promtest_hits 41")
	wantLine(t, body, "# TYPE eventcap_promtest_depth gauge")
	wantLine(t, body, "eventcap_promtest_depth 3")
	wantLine(t, body, "eventcap_promtest_depth_max 5")
	wantLine(t, body, "eventcap_promtest_level 0.125")
}

func TestPrometheusCounterVec(t *testing.T) {
	v := NewCounterVec("promtest.bin", 3)
	v.Add(0, 7)
	v.Add(2, 9)

	body := promBody(t)
	wantLine(t, body, "# TYPE eventcap_promtest_bin counter")
	wantLine(t, body, `eventcap_promtest_bin{bin="00"} 7`)
	wantLine(t, body, `eventcap_promtest_bin{bin="01"} 0`)
	wantLine(t, body, `eventcap_promtest_bin{bin="02"} 9`)
}

// TestPrometheusHistogramCumulates pins the shape translation: the
// internal buckets count only their own range, the exposition must be
// cumulative and in seconds.
func TestPrometheusHistogramCumulates(t *testing.T) {
	h := NewDurationHist("promtest.lat")
	h.Observe(5 * time.Millisecond)  // le_10ms bucket
	h.Observe(50 * time.Millisecond) // le_100ms bucket
	h.Observe(2 * time.Minute)       // open top bucket

	body := promBody(t)
	wantLine(t, body, "# TYPE eventcap_promtest_lat histogram")
	wantLine(t, body, `eventcap_promtest_lat_bucket{le="0.001"} 0`)
	wantLine(t, body, `eventcap_promtest_lat_bucket{le="0.01"} 1`)
	wantLine(t, body, `eventcap_promtest_lat_bucket{le="0.1"} 2`)
	wantLine(t, body, `eventcap_promtest_lat_bucket{le="100"} 2`)
	wantLine(t, body, `eventcap_promtest_lat_bucket{le="+Inf"} 3`)
	wantLine(t, body, "eventcap_promtest_lat_count 3")
	// Sum: 5ms + 50ms + 120s = 120.055 seconds.
	wantLine(t, body, "eventcap_promtest_lat_sum 120.055")
}

// TestPrometheusStatsGauges: the stats.* surface round-trips through a
// StatsView publish.
func TestPrometheusStatsGauges(t *testing.T) {
	v := &StatsView{}
	r := exampleReport(0.8, 0.04)
	r.RelHalfWidth = 0.05
	v.Publish(r)

	body := promBody(t)
	wantLine(t, body, "eventcap_stats_qom_mean 0.8")
	wantLine(t, body, "eventcap_stats_qom_half_width 0.04")
	wantLine(t, body, "eventcap_stats_qom_rel_half_width 0.05")
}

// TestPrometheusSortedAndParsable: families arrive in sorted order and
// every non-comment line is "name[{labels}] value".
func TestPrometheusSortedAndParsable(t *testing.T) {
	body := promBody(t)
	var prevFamily string
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if fam, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam = strings.Fields(fam)[0]
			if fam < prevFamily {
				t.Fatalf("family %q after %q: exposition not sorted", fam, prevFamily)
			}
			prevFamily = fam
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 || !strings.HasPrefix(fields[0], "eventcap_") {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	if prevFamily == "" {
		t.Fatal("no families in exposition")
	}
}
