package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// ServeMetrics starts an HTTP server on addr exposing the expvar map at
// /debug/vars (including the "eventcap" metric set) and the pprof
// handlers under /debug/pprof/, for inspecting a long sweep while it
// runs. It returns the bound address (useful with ":0") and a stop
// function that shuts the server down.
//
// The server runs on its own mux — it never touches
// http.DefaultServeMux — and serves only diagnostics; bind it to
// localhost unless the network is trusted.
func ServeMetrics(addr string) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func() error {
		err := srv.Close()
		if serveErr := <-done; serveErr != nil && serveErr != http.ErrServerClosed && err == nil {
			err = serveErr
		}
		return err
	}, nil
}
