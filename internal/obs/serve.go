package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// debugHandlers holds extra routes registered by other subsystems (the
// trace flight recorder's /debug/trace, for example) before the server
// starts. Guarded by debugMu: registration may race with a concurrent
// ServeMetrics call building the mux.
var (
	debugMu       sync.Mutex
	debugHandlers = map[string]http.Handler{}
)

// HandleDebug registers an extra handler on the debug server, joining
// /debug/vars and the pprof routes. Call before ServeMetrics. The last
// registration for a pattern wins, so a CLI run invoked repeatedly in
// one process (tests) can re-arm its routes.
func HandleDebug(pattern string, h http.Handler) {
	debugMu.Lock()
	defer debugMu.Unlock()
	debugHandlers[pattern] = h
}

// DebugMux builds the diagnostics mux served by ServeMetrics: the expvar
// map at /debug/vars, its Prometheus text exposition at /metrics, the
// pprof handlers under /debug/pprof/, the run dashboard at /debug/runs,
// and every handler registered with HandleDebug. Exported so tests can drive the routes through httptest
// without binding a socket.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", PrometheusHandler())
	mux.Handle("/debug/runs", DefaultRegistry.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	debugMu.Lock()
	defer debugMu.Unlock()
	// nondeterm:ok route registration: mux dispatch is by pattern, not order
	for pattern, h := range debugHandlers {
		mux.Handle(pattern, h)
	}
	return mux
}

// ServeMetrics starts an HTTP server on addr exposing the expvar map at
// /debug/vars (including the "eventcap" metric set), the pprof handlers
// under /debug/pprof/, and any handlers registered with HandleDebug, for
// inspecting a long sweep while it runs. It returns the bound address
// (useful with ":0") and a stop function that shuts the server down.
//
// The server runs on its own mux — it never touches
// http.DefaultServeMux — and serves only diagnostics; bind it to
// localhost unless the network is trusted.
func ServeMetrics(addr string) (boundAddr string, stop func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: listening on %s: %w", addr, err)
	}
	srv := &http.Server{Handler: DebugMux(), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	return ln.Addr().String(), func() error {
		err := srv.Close()
		if serveErr := <-done; serveErr != nil && serveErr != http.ErrServerClosed && err == nil {
			err = serveErr
		}
		return err
	}, nil
}
