package obs

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func getDashboard(t *testing.T, r *Registry) string {
	t.Helper()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func TestDashboardEmptyRegistry(t *testing.T) {
	body := getDashboard(t, NewRegistry())
	for _, want := range []string{"no runs in flight", "no completed runs", "/debug/vars", "/debug/pprof", "active (0)", "completed (0)"} {
		if !strings.Contains(body, want) {
			t.Errorf("empty dashboard missing %q", want)
		}
	}
}

func TestDashboardRendersActiveAndCompleted(t *testing.T) {
	r := NewRegistry()
	prog := NewProgress()
	prog.Enqueued(4)
	prog.Started()
	prog.Finished(50*time.Millisecond, nil)
	span := BeginSpan("fig6a")
	r.Begin("fig6a", "sha256:deadbeef", prog, span)

	done := r.Begin("fig3a", "sha256:feedface", nil, nil)
	done.Complete(RunRecord{
		Experiment: "fig3a",
		Status:     "ok",
		Engine:     "auto",
		WallMillis: 1500,
		Phases: &Phase{
			Name: "fig3a", Count: 1, WallMicros: 1_500_000,
			Phases: []*Phase{
				{Name: "solve", Count: 1, WallMicros: 500_000},
				{Name: "sim.run", Count: 3, WallMicros: 1_000_000},
			},
		},
	})
	failed := r.Begin("fig4a", "", nil, nil)
	failed.Complete(RunRecord{Experiment: "fig4a", Status: "error", Engine: "auto"})

	body := getDashboard(t, r)
	for _, want := range []string{
		"active (1)", "fig6a", "1/4 jobs", "sha256:deadbeef",
		"completed (2)", "fig3a", "1.5s", "solve", "sim.run", "class=\"bar",
		"fig4a", `class="err"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard missing %q\n%s", want, body)
		}
	}
}

func TestDashboardActiveWithoutProgressSaysRunning(t *testing.T) {
	r := NewRegistry()
	r.Begin("bare", "", nil, nil)
	if body := getDashboard(t, r); !strings.Contains(body, "running") {
		t.Error("active run without Progress should render as \"running\"")
	}
}

// TestDashboardConcurrentRegistration serves the dashboard while runs
// register and complete underneath it; the race detector guards the
// registry's locking.
func TestDashboardConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				a := r.Begin(fmt.Sprintf("run%d.%d", i, j), "", NewProgress(), BeginSpan("x"))
				a.Complete(RunRecord{Experiment: "x", Status: "ok"})
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				resp, err := http.Get(srv.URL)
				if err != nil {
					t.Error(err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %s", resp.Status)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPhaseBars(t *testing.T) {
	if phaseBars(nil) != nil {
		t.Fatal("nil phase should yield no bars")
	}
	root := &Phase{Name: "run", Count: 1, WallMicros: 100}
	bars := phaseBars(root)
	if len(bars) != 1 || bars[0].Name != "run" {
		t.Fatalf("leaf-only bars = %v", bars)
	}
	root.Phases = []*Phase{
		{Name: "a", WallMicros: 75, Count: 1},
		{Name: "b", WallMicros: 25, Count: 1},
		{Name: "c", WallMicros: 0, Count: 1},
	}
	bars = phaseBars(root)
	if len(bars) != 3 {
		t.Fatalf("bars = %d", len(bars))
	}
	if bars[0].Width != 120 || bars[1].Width != 40 {
		t.Fatalf("widths = %d/%d, want 120/40 of 160", bars[0].Width, bars[1].Width)
	}
	if bars[2].Width != 1 {
		t.Fatalf("zero-wall bar width = %d, want the 1px floor", bars[2].Width)
	}
}
