package obs

import (
	"bytes"
	"fmt"
	"html/template"
	"net/http"
	"time"
)

// dashboardTmpl renders /debug/runs: active runs with their live
// progress line, completed runs with phase bars, and links to the other
// debug surfaces. Pure stdlib html/template; values are escaped by the
// template engine.
var dashboardTmpl = template.Must(template.New("runs").Parse(`<!DOCTYPE html>
<html>
<head>
<title>eventcap runs</title>
<style>
body { font-family: monospace; margin: 1.5em; background: #fafafa; color: #222; }
h1 { font-size: 1.2em; }
h2 { font-size: 1em; margin-top: 1.5em; }
table { border-collapse: collapse; }
td, th { padding: 0.2em 0.8em; text-align: left; border-bottom: 1px solid #ddd; }
.bar { display: inline-block; height: 0.8em; background: #4a90d9; vertical-align: middle; }
.bar.b1 { background: #7bb661; }
.bar.b2 { background: #d9a44a; }
.bar.b3 { background: #c75d5d; }
.phase { white-space: nowrap; }
.spark { letter-spacing: 1px; color: #4a90d9; }
.err { color: #c00; }
.dim { color: #888; }
</style>
</head>
<body>
<h1>eventcap runs</h1>
<p class="dim">
<a href="/debug/vars">/debug/vars</a> ·
<a href="/debug/pprof/">/debug/pprof</a> ·
<a href="/debug/trace">/debug/trace</a>
</p>

<h2>active ({{len .Active}})</h2>
{{if .Active}}
<table>
<tr><th>run</th><th>since</th><th>progress</th><th>qom (95% CI)</th><th>convergence</th><th>digest</th></tr>
{{range .Active}}
<tr>
<td>{{.Name}}</td>
<td>{{.Since}}</td>
<td>{{.Progress}}</td>
<td>{{.QoM}}</td>
<td class="spark">{{.Spark}}</td>
<td class="dim">{{.Digest}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="dim">no runs in flight</p>{{end}}

<h2>completed ({{len .Completed}})</h2>
{{if .Completed}}
<table>
<tr><th>run</th><th>status</th><th>engine</th><th>wall</th><th>qom (95% CI)</th><th>phases</th></tr>
{{range .Completed}}
<tr>
<td>{{.Name}}</td>
<td{{if .Failed}} class="err"{{end}}>{{.Status}}</td>
<td>{{.Engine}}</td>
<td>{{.Wall}}</td>
<td>{{.QoM}}</td>
<td>{{range $i, $p := .Phases}}<span class="phase" title="{{$p.Detail}}"><span class="bar b{{$p.Color}}" style="width: {{$p.Width}}px"></span> {{$p.Name}} {{$p.Wall}}</span> {{end}}</td>
</tr>
{{end}}
</table>
{{else}}<p class="dim">no completed runs</p>{{end}}
</body>
</html>
`))

type dashPhase struct {
	Name   string
	Wall   string
	Detail string
	Width  int // bar width in px, proportional to the run's wall time
	Color  int // palette index, cycling
}

type dashActive struct {
	Name     string
	Since    string
	Progress string
	QoM      string
	Spark    string
	Digest   string
}

type dashCompleted struct {
	Name   string
	Status string
	Failed bool
	Engine string
	Wall   string
	QoM    string
	Phases []dashPhase
}

// fmtQoM renders a point estimate with its CI half-width ("0.8123 ±
// 0.0042"); hasCI=false drops the band, mean<=0 with no captures at all
// renders as a dash.
func fmtQoM(mean, halfWidth float64, hasCI bool) string {
	if mean == 0 && halfWidth == 0 && !hasCI {
		return "–"
	}
	if !hasCI {
		return fmt.Sprintf("%.4f", mean)
	}
	return fmt.Sprintf("%.4f ± %.4f", mean, halfWidth)
}

type dashData struct {
	Active    []dashActive
	Completed []dashCompleted
}

// phaseBars flattens a run's top-level phases into bar specs. Bars
// scale against the run's total wall time, maxWidth px for the whole
// run.
func phaseBars(root *Phase) []dashPhase {
	if root == nil {
		return nil
	}
	const maxWidth = 160
	total := root.WallMicros
	if total <= 0 {
		total = 1
	}
	phases := root.Phases
	if len(phases) == 0 {
		phases = []*Phase{root}
	}
	out := make([]dashPhase, 0, len(phases))
	for i, p := range phases {
		w := int(p.WallMicros * maxWidth / total)
		if w < 1 {
			w = 1
		}
		out = append(out, dashPhase{
			Name:   p.Name,
			Wall:   (time.Duration(p.WallMicros) * time.Microsecond).Round(time.Millisecond).String(),
			Detail: fmt.Sprintf("%s: %d span(s), %dµs", p.Name, p.Count, p.WallMicros),
			Width:  w,
			Color:  i % 4,
		})
	}
	return out
}

// Handler serves the registry as the /debug/runs HTML dashboard.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		data := dashData{}
		for _, a := range r.ActiveRuns() {
			v := dashActive{
				Name:   a.Name,
				Since:  time.Since(a.Started).Round(time.Second).String(),
				Digest: a.Digest,
			}
			if a.Progress != nil {
				v.Progress = a.Progress.Line()
			} else {
				v.Progress = "running"
			}
			if r, ok := a.Stats.Last(); ok {
				v.QoM = fmtQoM(r.Mean, r.HalfWidth, r.Level != 0)
				v.Spark = a.Stats.Sparkline()
			} else {
				v.QoM = "–"
			}
			data.Active = append(data.Active, v)
		}
		for _, c := range r.CompletedRuns() {
			rec := c.Record
			data.Completed = append(data.Completed, dashCompleted{
				Name:   rec.Experiment,
				Status: rec.Status,
				Failed: rec.Status != "ok",
				Engine: rec.Engine,
				Wall:   (time.Duration(rec.WallMillis) * time.Millisecond).String(),
				QoM:    fmtQoM(rec.QoMMean, rec.QoMHalfWidth, rec.QoMHalfWidth > 0),
				Phases: phaseBars(rec.Phases),
			})
		}
		var buf bytes.Buffer
		if err := dashboardTmpl.Execute(&buf, data); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(buf.Bytes())
	})
}
