package eventcap_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"eventcap/internal/sim"
)

// benchStats measures one engine's slot loop with the streaming
// statistics probe on or off, on the same sparse-activation
// configuration as BENCH_kernel and BENCH_obs — the regime where
// per-observation overhead is most visible.
func benchStats(b *testing.B, engine sim.Engine, stats bool) {
	// The config (and its greedy-FI policy solve) is built once outside
	// the timed loop: the benchmark measures the slot loop, the thing
	// the overhead budget is written against.
	cfg := kernelBenchConfig(b, engine, 1_000_000, 1)
	cfg.Stats = stats
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("benchmark run saw no events")
		}
		if stats && res.Stats == nil {
			b.Fatal("stats requested but not collected")
		}
	}
}

// BenchmarkStatsOverhead quantifies the cost of Config.Stats on both
// engines (slots/op is 1e6). The contract asserted by
// TestStatsOverheadWithinBudget and recorded in BENCH_stats.json is
// that the streaming estimators cost at most a few percent of slot
// throughput — they observe per event (plus a strided battery sample),
// not per slot, so the budget is the same one Metrics lives under.
func BenchmarkStatsOverhead(b *testing.B) {
	b.Run("reference/stats=off", func(b *testing.B) { benchStats(b, sim.EngineReference, false) })
	b.Run("reference/stats=on", func(b *testing.B) { benchStats(b, sim.EngineReference, true) })
	b.Run("kernel/stats=off", func(b *testing.B) { benchStats(b, sim.EngineKernel, false) })
	b.Run("kernel/stats=on", func(b *testing.B) { benchStats(b, sim.EngineKernel, true) })
}

// TestStatsOverheadWithinBudget enforces the ≤2% slot-loop budget of
// DESIGN.md §16 on the reference engine (the engine that feeds the
// probe from every event slot in the loop itself, hence the worst
// case), using the interleaved-rounds methodology of
// bench_rounds_test.go. Gated behind an env var together with the JSON
// emission because a trustworthy measurement needs a quiet machine:
//
//	BENCH_STATS_JSON=BENCH_stats.json go test -run TestStatsOverheadWithinBudget .
func TestStatsOverheadWithinBudget(t *testing.T) {
	path := os.Getenv("BENCH_STATS_JSON")
	if path == "" {
		t.Skip("set BENCH_STATS_JSON=<path> to measure overhead and emit the benchmark record")
	}
	const rounds = 5
	const budgetPct = 2.0
	ref := measureOverhead(rounds,
		func(b *testing.B) { benchStats(b, sim.EngineReference, false) },
		func(b *testing.B) { benchStats(b, sim.EngineReference, true) })
	ker := measureOverhead(rounds,
		func(b *testing.B) { benchStats(b, sim.EngineKernel, false) },
		func(b *testing.B) { benchStats(b, sim.EngineKernel, true) })
	if !ref.withinBudget(budgetPct) {
		t.Errorf("reference engine stats overhead %.2f%% exceeds %.0f%% budget + %.2f%% noise floor (%d → %d ns/op)",
			ref.MedianOverheadPct, budgetPct, ref.NoiseFloorPct, ref.MedianOffNsPerOp, ref.MedianOnNsPerOp)
	}
	rec := struct {
		Benchmark  string              `json:"benchmark"`
		Config     string              `json:"config"`
		SlotsPerOp int64               `json:"slots_per_op"`
		BudgetPct  float64             `json:"budget_pct"`
		Rounds     int                 `json:"rounds"`
		Reference  overheadMeasurement `json:"reference"`
		Kernel     overheadMeasurement `json:"kernel"`
		GoMaxProcs int                 `json:"gomaxprocs"`
		GoVersion  string              `json:"go_version"`
	}{
		Benchmark:  "BenchmarkStatsOverhead",
		Config:     "greedy-FI (fig3a policy family), Weibull(40,3), Bernoulli(0.1,1) recharge, K=1000",
		SlotsPerOp: 1_000_000,
		BudgetPct:  budgetPct,
		Rounds:     rounds,
		Reference:  ref,
		Kernel:     ker,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("stats overhead: reference median %.2f%% (noise floor %.2f%%), kernel median %.2f%% (noise floor %.2f%%)",
		ref.MedianOverheadPct, ref.NoiseFloorPct, ker.MedianOverheadPct, ker.NoiseFloorPct)
}
