// Multi-PoI monitoring (library extension): a single harvesting sensor
// covers three points of interest with different event rhythms — a
// machine bearing (regular, Weibull), a doorway (loose, Weibull), and a
// delivery dock (uniform window). It can check at most one PoI per slot.
//
// The Lagrangian index policy from core.OptimizeMultiPoI watches whichever
// PoI currently has the highest event hazard and activates only when that
// hazard clears a threshold calibrated to the harvest rate. The example
// prints the calibration, simulates it against blind cycling, and breaks
// captures down per PoI.
//
// Run with: go run ./examples/multipoi
package main

import (
	"fmt"
	"os"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multipoi:", err)
		os.Exit(1)
	}
}

func run() error {
	bearing, err := dist.NewWeibull(40, 3)
	if err != nil {
		return err
	}
	doorway, err := dist.NewWeibull(25, 2)
	if err != nil {
		return err
	}
	dock, err := dist.NewUniformInt(10, 30)
	if err != nil {
		return err
	}
	dists := []dist.Interarrival{bearing, doorway, dock}
	names := []string{"bearing W(40,3)", "doorway W(25,2)", "dock U(10,30)"}
	params := core.DefaultParams()
	const e = 0.5

	cal, err := core.OptimizeMultiPoI(dists, e, params)
	if err != nil {
		return err
	}
	fmt.Printf("harvest e = %.2f, total event rate %.4f/slot across %d PoIs\n",
		e, cal.EventRate, len(dists))
	fmt.Printf("calibrated index policy: watch argmax-hazard PoI, activate when hazard >= %.4f\n", cal.Threshold)
	fmt.Printf("analytic capture probability (all PoIs): %.4f\n\n", cal.CaptureProb)

	newRecharge := func() energy.Recharge {
		r, _ := energy.NewBernoulli(0.5, e/0.5)
		return r
	}
	runPolicy := func(pol sim.PoIPolicy, seed uint64) (*sim.MultiPoIResult, error) {
		return sim.RunMultiPoI(sim.MultiPoIConfig{
			Dists:       dists,
			Params:      params,
			NewRecharge: newRecharge,
			Policy:      pol,
			BatteryCap:  1000,
			Slots:       1_000_000,
			Seed:        seed,
		})
	}

	idx, err := runPolicy(&sim.MaxHazardThreshold{Dists: dists, Threshold: cal.Threshold}, 1)
	if err != nil {
		return err
	}
	blind, err := runPolicy(&sim.RoundRobinPoI{M: len(dists), Duty: e / params.ActivationCost()}, 2)
	if err != nil {
		return err
	}

	fmt.Printf("simulated QoM: index policy %.4f, blind cycling %.4f\n\n", idx.QoM, blind.QoM)
	fmt.Println("per-PoI breakdown (index policy):")
	for i, pp := range idx.PerPoI {
		frac := 0.0
		if pp.Events > 0 {
			frac = float64(pp.Captures) / float64(pp.Events)
		}
		fmt.Printf("  %-16s %6d events, %6d captured (%.4f)\n", names[i], pp.Events, pp.Captures, frac)
	}
	fmt.Println("\nthe index policy spends its energy where an event is imminent on ANY stream,")
	fmt.Println("so the most predictable stream (the dock window) earns the deepest coverage")
	fmt.Println("without starving the others — more than 13x the blind-cycling QoM overall.")
	return nil
}
