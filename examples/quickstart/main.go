// Quickstart: compute the optimal full-information activation policy for
// a Weibull workload (Theorem 1), inspect it, and verify by simulation
// that a sensor with a finite battery achieves the predicted capture
// probability.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Model the events: inter-arrival times ~ Weibull(40, 3). Shape 3
	// means an increasing hazard — events cluster around 36 slots apart,
	// so there is real memory to exploit.
	events, err := dist.NewWeibull(40, 3)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %s, mean gap %.1f slots\n", events.Name(), events.Mean())

	// 2. Energy model: δ1 = 1 per active slot, δ2 = 6 extra per capture,
	// harvesting e = 0.5 units/slot on average.
	params := core.DefaultParams()
	const e = 0.5

	// 3. Theorem 1: the greedy policy spends the per-cycle budget e·μ on
	// the slots with the highest conditional event probability.
	policy, err := core.GreedyFI(events, e, params)
	if err != nil {
		return err
	}
	fmt.Printf("greedy policy: sleeps through the first slots, activates from the hazard ramp\n")
	fmt.Printf("  analytic capture probability U = %.4f (energy-balanced at e = %.2f)\n",
		policy.CaptureProb, policy.EnergyRate)

	// 4. Reality check: a sensor with a K = 1000 battery, recharged by a
	// random Bernoulli process, simulated for a million slots.
	result, err := sim.Run(sim.Config{
		Dist:   events,
		Params: params,
		NewRecharge: func() energy.Recharge {
			r, _ := energy.NewBernoulli(0.5, 1) // 1 unit with prob 0.5 → e = 0.5
			return r
		},
		NewPolicy:  func(int) sim.Policy { return &sim.VectorFI{Vector: policy.Policy} },
		BatteryCap: 1000,
		Slots:      1_000_000,
		Seed:       7,
		Info:       sim.FullInfo,
	})
	if err != nil {
		return err
	}
	fmt.Printf("simulated: %d events, %d captured → QoM = %.4f\n",
		result.Events, result.Captures, result.QoM)
	fmt.Printf("gap to theory: %+.4f (vanishes as K grows — the paper's Fig. 3)\n",
		result.QoM-policy.CaptureProb)
	return nil
}
