// Water-leak monitoring: the paper's motivating full-information scenario
// (Section IV-A). A leak must be caught the moment it appears to limit
// damage, but it leaves stains, so the sensor always learns afterwards
// whether one occurred — full information. Pipe joints fail with an
// increasing hazard (aging seals), modelled as Weibull.
//
// The example compares the greedy Theorem-1 policy against the aggressive
// and periodic baselines at several harvesting rates, and shows the
// battery-size sensitivity that a deployment engineer actually has to
// pick K by.
//
// Run with: go run ./examples/waterleak
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "waterleak:", err)
		os.Exit(1)
	}
}

func run() error {
	// One slot = 1 hour. Leaks at a monitored joint recur with a mean of
	// ~3 weeks (504 h) and strongly increasing hazard.
	leaks, err := dist.NewWeibull(560, 4)
	if err != nil {
		return err
	}
	params := core.DefaultParams()
	fmt.Printf("leak process: %s, mean recurrence %.0f h\n\n", leaks.Name(), leaks.Mean())

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "harvest e\tgreedy (sim)\tgreedy (theory)\taggressive\tperiodic")

	const (
		slots = 2_000_000
		capK  = 1000
	)
	for _, e := range []float64{0.01, 0.02, 0.05, 0.1} {
		greedy, err := core.GreedyFI(leaks, e, params)
		if err != nil {
			return err
		}
		theta2, err := core.PeriodicTheta2(3, e, leaks, params)
		if err != nil {
			return err
		}
		periodic, err := sim.NewPeriodic(3, theta2)
		if err != nil {
			return err
		}

		runPolicy := func(mk func(int) sim.Policy, seed uint64) (float64, error) {
			res, err := sim.Run(sim.Config{
				Dist:   leaks,
				Params: params,
				NewRecharge: func() energy.Recharge {
					r, _ := energy.NewBernoulli(0.1, e/0.1)
					return r
				},
				NewPolicy:  mk,
				BatteryCap: capK,
				Slots:      slots,
				Seed:       seed,
				Info:       sim.FullInfo,
			})
			if err != nil {
				return 0, err
			}
			return res.QoM, nil
		}

		gq, err := runPolicy(func(int) sim.Policy { return &sim.VectorFI{Vector: greedy.Policy} }, 1)
		if err != nil {
			return err
		}
		aq, err := runPolicy(func(int) sim.Policy { return sim.Aggressive{} }, 2)
		if err != nil {
			return err
		}
		pq, err := runPolicy(func(int) sim.Policy { return periodic }, 3)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%.2f\t%.4f\t%.4f\t%.4f\t%.4f\n", e, gq, greedy.CaptureProb, aq, pq)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	// Battery sizing: how big must the bucket be before theory holds?
	fmt.Println("\nbattery sizing at e = 0.05 (greedy policy):")
	greedy, err := core.GreedyFI(leaks, 0.05, params)
	if err != nil {
		return err
	}
	for _, capK := range []float64{7, 20, 50, 150, 500} {
		res, err := sim.Run(sim.Config{
			Dist:   leaks,
			Params: params,
			NewRecharge: func() energy.Recharge {
				r, _ := energy.NewBernoulli(0.1, 0.5)
				return r
			},
			NewPolicy:  func(int) sim.Policy { return &sim.VectorFI{Vector: greedy.Policy} },
			BatteryCap: capK,
			Slots:      slots,
			Seed:       4,
			Info:       sim.FullInfo,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  K = %4.0f → QoM %.4f (theory %.4f)\n", capK, res.QoM, greedy.CaptureProb)
	}
	fmt.Println("\ntakeaway: K ~ 500 already recovers ~90% of the asymptotic optimum, and")
	fmt.Println("exploiting leak-recurrence memory captures 4-5x more than blind duty cycling.")
	return nil
}
