// Wildlife camera trap: a partial-information scenario. An animal's
// visits to a waterhole leave no trace a sleeping camera could see, so
// the sensor learns about a visit only while active — the paper's POMDP
// setting. Visits recur with heavy-tailed gaps (Pareto): right after a
// sighting another is unlikely, then the hazard decays slowly.
//
// The example shows the clustering policy's three regions in action —
// cooling, hot, and the recovery region that rescues the schedule after a
// missed visit — and compares against the aggressive baseline and the
// window-refined policy.
//
// Run with: go run ./examples/wildlife
package main

import (
	"fmt"
	"os"
	"strings"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "wildlife:", err)
		os.Exit(1)
	}
}

func run() error {
	// One slot = 10 minutes. Visits recur at least 3h apart, heavy tail.
	visits, err := dist.NewPareto(2, 18)
	if err != nil {
		return err
	}
	params := core.DefaultParams()
	const e = 0.3
	fmt.Printf("visit process: %s, mean gap %.1f slots\n", visits.Name(), visits.Mean())

	// Cap the cooling gap at ~16 mean cycles: the unconstrained analytic
	// optimum for heavy tails is a "lottery" policy (rare, very long
	// blackouts) that a finite battery executes poorly — see
	// EXPERIMENTS.md, "Known deviations".
	opts := core.ClusteringOptions{MaxGap: 16 * int(visits.Mean()+1)}
	pi, err := core.OptimizeClustering(visits, e, params, opts)
	if err != nil {
		return err
	}
	fmt.Printf("\nclustering policy pi'_PI(e=%.2f):\n", e)
	fmt.Printf("  cooling  [1, %d): sleep while a visit is impossible/unlikely\n", pi.Policy.N1)
	fmt.Printf("  hot      [%d, %d]: watch where the hazard concentrates\n", pi.Policy.N1, pi.Policy.N2)
	fmt.Printf("  cooling  (%d, %d): recharge\n", pi.Policy.N2, pi.Policy.N3)
	fmt.Printf("  recovery [%d, ∞): after a miss, stay on until a sighting renews the schedule\n", pi.Policy.N3)
	fmt.Printf("  analytic U = %.4f at energy rate %.4f\n", pi.CaptureProb, pi.EnergyRate)

	// The paper's refinement: extra transition points after c_n3.
	refined, err := core.RefineWindows(visits, e, params, pi, 2)
	if err != nil {
		return err
	}
	fmt.Printf("  window-refined U = %.4f (%d extra sleep windows)\n",
		refined.CaptureProb, len(refined.Policy.Windows))

	// Simulate and show a short activity strip around a miss/recovery.
	var strip strings.Builder
	recording := false
	recorded := 0
	res, err := sim.Run(sim.Config{
		Dist:   visits,
		Params: params,
		NewRecharge: func() energy.Recharge {
			r, _ := energy.NewBernoulli(0.5, e/0.5)
			return r
		},
		NewPolicy:  func(int) sim.Policy { return &sim.VectorPI{Vector: pi.Vector} },
		BatteryCap: 800,
		Slots:      1_000_000,
		Seed:       11,
		Info:       sim.PartialInfo,
		Trace: func(r sim.TraceRecord) {
			// Record a strip starting at the first missed visit.
			if !recording && r.Event && !r.Captured && r.Slot > 100 {
				recording = true
			}
			if recording && recorded < 120 {
				switch {
				case r.Captured:
					strip.WriteByte('C') // captured visit
				case r.Event:
					strip.WriteByte('!') // missed visit
				case len(r.Actions) > 0 && r.Actions[0]:
					strip.WriteByte('a') // active, nothing there
				default:
					strip.WriteByte('.') // asleep
				}
				recorded++
			}
		},
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulated over %d slots: %d visits, %d photographed → QoM %.4f\n",
		res.Slots, res.Events, res.Captures, res.QoM)

	agg, err := sim.Run(sim.Config{
		Dist:   visits,
		Params: params,
		NewRecharge: func() energy.Recharge {
			r, _ := energy.NewBernoulli(0.5, e/0.5)
			return r
		},
		NewPolicy:  func(int) sim.Policy { return sim.Aggressive{} },
		BatteryCap: 800,
		Slots:      1_000_000,
		Seed:       11,
		Info:       sim.PartialInfo,
	})
	if err != nil {
		return err
	}
	fmt.Printf("aggressive baseline under the same energy: QoM %.4f\n", agg.QoM)

	fmt.Printf("\nactivity strip from the first miss (a=active, .=asleep, C=capture, !=missed):\n  %s\n", strip.String())
	fmt.Println("\nnote the recovery: after '!', the camera stays on ('aaaa…') until the next 'C',")
	fmt.Println("then the cooling/hot rhythm ('....aaa') resumes — exactly Eq. (11)'s structure.")
	return nil
}
