// Multi-sensor collaboration (paper Section V): a single harvesting
// sensor's recharge rate is often too low for useful coverage, so N
// sensors share one point of interest. The example contrasts three ways
// to use them under partial information:
//
//  1. uncoordinated — every sensor runs its own single-sensor policy on
//     its own information (redundant activations),
//  2. M-PI — round-robin slot ownership with the clustering policy
//     computed for the aggregate rate N·e and captures broadcast,
//  3. the multi-sensor aggressive baseline on the same slot assignment.
//
// Run with: go run ./examples/multisensor
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multisensor:", err)
		os.Exit(1)
	}
}

func run() error {
	events, err := dist.NewWeibull(40, 3)
	if err != nil {
		return err
	}
	params := core.DefaultParams()
	const (
		perSensorE = 0.1 // slow harvesting: a lone sensor is nearly blind
		capK       = 1000
		slots      = 1_000_000
	)
	fmt.Printf("workload %s, per-sensor harvest e = %.2f (saturation would need %.2f)\n\n",
		events.Name(), perSensorE, params.SaturationRate(events.Mean()))

	newRecharge := func() energy.Recharge {
		r, _ := energy.NewBernoulli(0.1, perSensorE/0.1)
		return r
	}

	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintln(w, "N\tuncoordinated\tM-PI\taggressive RR\tM-PI imbalance")
	for _, n := range []int{1, 2, 4, 8} {
		// Uncoordinated: each sensor optimizes for its OWN rate e and
		// acts on its own capture history.
		solo, err := core.OptimizeClustering(events, perSensorE, params, core.ClusteringOptions{})
		if err != nil {
			return err
		}
		unco, err := sim.Run(sim.Config{
			Dist: events, Params: params, NewRecharge: newRecharge,
			NewPolicy:  func(int) sim.Policy { return &sim.VectorPI{Vector: solo.Vector} },
			N:          n,
			Mode:       sim.ModeAll,
			BatteryCap: capK, Slots: slots, Seed: uint64(10 + n), Info: sim.PartialInfo,
		})
		if err != nil {
			return err
		}

		// M-PI: the clustering policy for the aggregate rate N·e, slots
		// owned round robin, captures broadcast.
		team, err := core.OptimizeClustering(events, float64(n)*perSensorE, params, core.ClusteringOptions{})
		if err != nil {
			return err
		}
		mpi, err := sim.Run(sim.Config{
			Dist: events, Params: params, NewRecharge: newRecharge,
			NewPolicy:  func(int) sim.Policy { return &sim.VectorPI{Vector: team.Vector} },
			N:          n,
			Mode:       sim.ModeRoundRobin,
			BatteryCap: capK, Slots: slots, Seed: uint64(20 + n), Info: sim.PartialInfo,
		})
		if err != nil {
			return err
		}

		agg, err := sim.Run(sim.Config{
			Dist: events, Params: params, NewRecharge: newRecharge,
			NewPolicy:  func(int) sim.Policy { return sim.Aggressive{} },
			N:          n,
			Mode:       sim.ModeRoundRobin,
			BatteryCap: capK, Slots: slots, Seed: uint64(30 + n), Info: sim.PartialInfo,
		})
		if err != nil {
			return err
		}

		fmt.Fprintf(w, "%d\t%.4f\t%.4f\t%.4f\t%.3f\n",
			n, unco.QoM, mpi.QoM, agg.QoM, mpi.LoadImbalance())
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Println("\ntakeaways: M-PI converts N slow sensors into one fast logical sensor;")
	fmt.Println("uncoordinated sensors waste activations on the same slots; the aggressive")
	fmt.Println("baseline grows only linearly with N (paper Fig. 6(a)).")
	return nil
}
