// Package eventcap is a Go reproduction of "Dynamic Activation Policies
// for Event Capture with Rechargeable Sensors" (Ren, Cheng, Chen, Yau,
// Sun — ICDCS 2012): optimal and heuristic duty-cycling policies for
// energy-harvesting sensors that must catch renewal-process events in the
// slot they occur.
//
// The implementation lives in internal packages:
//
//   - internal/core — the paper's policies: the Theorem-1 greedy
//     full-information policy, its LP cross-check, the partial-information
//     clustering heuristic with region optimizer, the window refinement,
//     the EBCW comparison policy, and the exact renewal-age Bayes filter.
//   - internal/dist, internal/renewal — slotted inter-arrival
//     distributions and discrete renewal theory.
//   - internal/energy — batteries and recharge processes.
//   - internal/mdp — average-reward MDP machinery and an exact
//     finite-horizon POMDP solver.
//   - internal/sim — the slotted simulator (single- and multi-sensor).
//   - internal/experiments — one registered experiment per paper figure
//     plus ablations.
//
// Binaries: cmd/experiments (regenerate every figure), cmd/policycalc
// (inspect computed policies), cmd/simulate (one-off runs). Runnable
// examples live under examples/. The benchmarks in bench_test.go
// regenerate each figure in reduced form; see EXPERIMENTS.md for the full
// paper-vs-measured record.
package eventcap
