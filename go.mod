module eventcap

go 1.22
