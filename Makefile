# Development targets. `make check` is the gate a change must pass:
# vet + build + full test suite + the determinism/invariant lint suite
# + race-enabled library tests + a one-iteration benchmark smoke to
# catch bit-rot in the bench harness + the batch-engine and fleet-kernel
# speedup gates.

GO ?= go

.PHONY: all check vet build test lint lint-baseline fuzz-smoke race bench-smoke bench bench-batch bench-multi bench-kernel-json bench-batch-json bench-multi-json bench-obs-json bench-stats-json bench-stats bench-trace-json bench-span-json benchtraj bench-check trace-verify clean

all: check

check: vet build test lint race bench-smoke bench-batch bench-multi bench-stats trace-verify benchtraj bench-check

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The determinism & invariant lint suite (DESIGN.md §10, §15): eight
# custom analyzers over the module, zero findings beyond the committed
# baseline allowed (exit 0 clean, 1 findings, 2 load error — see
# cmd/eventcap-lint). govulncheck needs network access to fetch the
# vulnerability DB, so it runs only where installed (the CI lint job
# installs a pinned version and fails on findings); the custom analyzers
# are the offline-safe hard gate.
lint:
	$(GO) run ./cmd/eventcap-lint -baseline lint-baseline.json ./...
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipped (the CI lint job runs it)"; \
	fi

# Refresh the lint debt ledger. Only for acknowledging reviewed findings
# that cannot be fixed in the same change — document each entry's why
# field before committing.
lint-baseline:
	$(GO) run ./cmd/eventcap-lint -baseline lint-baseline.json -write-baseline ./...

# Short-budget fuzzing of the numeric contracts: binomial sampling vs
# CDF inversion, policy serialization round-trips, and the O(1)
# recharge closed form vs the sequential loop. Seed corpora live in
# testdata/fuzz; CI runs this same budget per target.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSampleBinomial -fuzztime $(FUZZTIME) ./internal/dist
	$(GO) test -run '^$$' -fuzz FuzzVectorJSONRoundTrip -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzClusteringPolicyRoundTrip -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run '^$$' -fuzz FuzzRechargeN -fuzztime $(FUZZTIME) ./internal/energy

# -short skips the long single-threaded solver sweeps (they exercise no
# concurrency); the kernel equivalence tests always run. The raised
# timeout absorbs the race detector's slowdown on small CI machines.
race:
	$(GO) test -race -short -timeout 1200s ./internal/...

# One iteration of each throughput benchmark: verifies the bench code
# still compiles and runs, without paying for a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SlotsPerOp|ObsOverhead|StatsOverhead|TraceOverhead|SpanOverhead' -benchtime 1x .

# Batch-engine smoke: run the gated BENCH_batch emitter — the >=5x
# speedup gate (batch engine vs B sequential kernel runs at B=10^4)
# plus the zero steady-state loop-allocation check — writing the record
# into batch-bench-artifact/ (the CI artifact upload) rather than over
# the committed quiet-machine BENCH_batch.json, so `make check` stays a
# no-op on tracked files. The gate compares the median of interleaved
# rounds against the target minus the measured noise floor, which
# absorbs shared-runner drift.
bench-batch:
	mkdir -p batch-bench-artifact
	BENCH_BATCH_JSON=batch-bench-artifact/BENCH_batch.json $(GO) test -run TestEmitBenchBatchJSON -count=1 -timeout 900s .

# Fleet-kernel smoke: the gated BENCH_multi emitter — the >=3x speedup
# gate (compiled fleet kernel vs the reference loop on the fig6-shaped
# N=8 round-robin workload) plus the zero steady-state loop-allocation
# check — writing into multi-bench-artifact/ (the CI artifact upload)
# for the same reasons as bench-batch.
bench-multi:
	mkdir -p multi-bench-artifact
	BENCH_MULTI_JSON=multi-bench-artifact/BENCH_multi.json $(GO) test -run TestEmitBenchMultiJSON -count=1 -timeout 900s .

# Streaming-statistics probe gate: the <=2% slot-loop overhead budget
# of DESIGN.md §16, measured with the interleaved-rounds methodology
# and written into stats-bench-artifact/ (the CI artifact upload)
# rather than over the committed quiet-machine BENCH_stats.json, so
# `make check` stays a no-op on tracked files.
bench-stats:
	mkdir -p stats-bench-artifact
	BENCH_STATS_JSON=stats-bench-artifact/BENCH_stats.json $(GO) test -run TestStatsOverheadWithinBudget -count=1 -timeout 900s .

# End-to-end trace verification: run a traced kernel-heavy experiment
# and replay the trace against its manifest with cmd/tracetool. The
# trace-artifact/ directory doubles as the CI artifact upload, so the
# run also emits its phase spans (Chrome trace-event JSON) and leaves
# the structured run journal (runs.jsonl) beside the CSVs.
trace-verify:
	$(GO) run ./cmd/experiments -run fig3a -quick -slots 20000 -out trace-artifact -trace -spans fig3a.spans.json
	$(GO) run ./cmd/tracetool replay trace-artifact/fig3a.manifest.json
	$(GO) run ./cmd/tracetool stats -manifest trace-artifact/fig3a.manifest.json trace-artifact/fig3a.evtrace

# Fold the current BENCH_*.json records into BENCH_trajectory.json
# (append-only history; a no-op when no record changed).
benchtraj:
	$(GO) run ./cmd/benchtraj

# Bench-regression gate: compare each committed BENCH_*.json figure of
# merit against the median of its trajectory history; fail when a
# speedup fell by more than the record's own noise floor plus a 10-point
# margin. Runs after benchtraj so the just-folded point (excluded as the
# record's own twin) never vouches for itself.
bench-check:
	$(GO) run ./cmd/benchtraj check

# Full measurement of the kernel and reference engines.
bench:
	$(GO) test -run '^$$' -bench 'SlotsPerOp' -benchtime 5x -count 3 .

# Regenerate BENCH_kernel.json (kernel vs reference on the sparse
# configuration; see EXPERIMENTS.md).
bench-kernel-json:
	BENCH_KERNEL_JSON=BENCH_kernel.json $(GO) test -run TestEmitBenchKernelJSON -count=1 -v .

# Regenerate the committed BENCH_batch.json (batch engine vs sequential
# kernel replications; same gate as bench-batch). Needs a quiet machine.
bench-batch-json:
	BENCH_BATCH_JSON=BENCH_batch.json $(GO) test -run TestEmitBenchBatchJSON -count=1 -timeout 900s -v .

# Regenerate the committed BENCH_multi.json (fleet kernel vs reference
# loop on the fig6-shaped workload; same gate as bench-multi). Needs a
# quiet machine.
bench-multi-json:
	BENCH_MULTI_JSON=BENCH_multi.json $(GO) test -run TestEmitBenchMultiJSON -count=1 -timeout 900s -v .

# Measure the cost of Config.Metrics on both engines, assert the ≤2%
# budget of DESIGN.md §9, and regenerate BENCH_obs.json. Needs a quiet
# machine — the assertion compares the median of ≥5 interleaved rounds
# against the budget plus the measured noise floor.
bench-obs-json:
	BENCH_OBS_JSON=BENCH_obs.json $(GO) test -run TestObsOverheadWithinBudget -count=1 -timeout 900s -v .

# Measure the streaming-statistics probe's cost (Config.Stats, budgeted
# <=2% of the reference slot loop like Metrics) and regenerate
# BENCH_stats.json. Same methodology and caveat as above.
bench-stats-json:
	BENCH_STATS_JSON=BENCH_stats.json $(GO) test -run TestStatsOverheadWithinBudget -count=1 -timeout 900s -v .

# Measure the tracing subsystem's cost (flight recorder budgeted ≤2%,
# full trace informational) and regenerate BENCH_trace.json. Same
# median-of-rounds methodology and quiet-machine caveat as above.
bench-trace-json:
	BENCH_TRACE_JSON=BENCH_trace.json $(GO) test -run TestTraceOverheadWithinBudget -count=1 -timeout 900s -v .

# Measure the phase-span tracer's cost (Config.Span + Config.Progress)
# on both engines, assert the same ≤2% budget, and regenerate
# BENCH_span.json. Same methodology and quiet-machine caveat as above.
bench-span-json:
	BENCH_SPAN_JSON=BENCH_span.json $(GO) test -run TestSpanOverheadWithinBudget -count=1 -timeout 900s -v .

clean:
	$(GO) clean ./...
