# Development targets. `make check` is the gate a change must pass:
# vet + build + full test suite + race-enabled library tests + a
# one-iteration benchmark smoke to catch bit-rot in the bench harness.

GO ?= go

.PHONY: all check vet build test race bench-smoke bench bench-kernel-json bench-obs-json clean

all: check

check: vet build test race bench-smoke

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# -short skips the long single-threaded solver sweeps (they exercise no
# concurrency); the kernel equivalence tests always run. The raised
# timeout absorbs the race detector's slowdown on small CI machines.
race:
	$(GO) test -race -short -timeout 1200s ./internal/...

# One iteration of each throughput benchmark: verifies the bench code
# still compiles and runs, without paying for a real measurement.
bench-smoke:
	$(GO) test -run '^$$' -bench 'SlotsPerOp|ObsOverhead' -benchtime 1x .

# Full measurement of the kernel and reference engines.
bench:
	$(GO) test -run '^$$' -bench 'SlotsPerOp' -benchtime 5x -count 3 .

# Regenerate BENCH_kernel.json (kernel vs reference on the sparse
# configuration; see EXPERIMENTS.md).
bench-kernel-json:
	BENCH_KERNEL_JSON=BENCH_kernel.json $(GO) test -run TestEmitBenchKernelJSON -count=1 -v .

# Measure the cost of Config.Metrics on both engines, assert the ≤2%
# budget of DESIGN.md §9, and regenerate BENCH_obs.json. Needs a quiet
# machine — the assertion compares best-of-N interleaved minimums.
bench-obs-json:
	BENCH_OBS_JSON=BENCH_obs.json $(GO) test -run TestObsOverheadWithinBudget -count=1 -timeout 900s -v .

clean:
	$(GO) clean ./...
