package eventcap_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"eventcap/internal/sim"
)

// benchObs measures one engine's slot loop with metrics collection on or
// off, on the same sparse-activation configuration as BENCH_kernel (the
// regime where per-slot overhead is most visible for the reference
// engine, and where the kernel's awake slots are rarest).
func benchObs(b *testing.B, engine sim.Engine, metrics bool) {
	// The config (and its greedy-FI policy solve, which dwarfs a single
	// run) is built once outside the timed loop: this benchmark measures
	// the slot loop, the thing the overhead budget is written against.
	cfg := kernelBenchConfig(b, engine, 1_000_000, 1)
	cfg.Metrics = metrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("benchmark run saw no events")
		}
		if metrics && res.Metrics == nil {
			b.Fatal("metrics requested but not collected")
		}
	}
}

// BenchmarkObsOverhead quantifies the cost of Config.Metrics on both
// engines (slots/op is 1e6). The contract asserted by
// TestObsOverheadWithinBudget and recorded in BENCH_obs.json is that
// enabling collection costs at most a few percent of slot throughput.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("reference/metrics=off", func(b *testing.B) { benchObs(b, sim.EngineReference, false) })
	b.Run("reference/metrics=on", func(b *testing.B) { benchObs(b, sim.EngineReference, true) })
	b.Run("kernel/metrics=off", func(b *testing.B) { benchObs(b, sim.EngineKernel, false) })
	b.Run("kernel/metrics=on", func(b *testing.B) { benchObs(b, sim.EngineKernel, true) })
}

// obsOverheadPct returns the metrics-on slowdown of engine as a
// percentage of the metrics-off time (negative when noise makes the
// instrumented run faster). Each variant is measured several times
// interleaved and the minimum kept: the minimum is the run least
// disturbed by the machine, and interleaving cancels slow drift
// (thermal, frequency scaling) that would otherwise bias one side.
func obsOverheadPct(engine sim.Engine) (offNs, onNs int64, pct float64) {
	const reps = 5
	best := func(cur, next int64) int64 {
		if cur == 0 || next < cur {
			return next
		}
		return cur
	}
	for i := 0; i < reps; i++ {
		off := testing.Benchmark(func(b *testing.B) { benchObs(b, engine, false) })
		on := testing.Benchmark(func(b *testing.B) { benchObs(b, engine, true) })
		offNs = best(offNs, off.NsPerOp())
		onNs = best(onNs, on.NsPerOp())
	}
	pct = 100 * (float64(onNs) - float64(offNs)) / float64(offNs)
	return offNs, onNs, pct
}

// TestObsOverheadWithinBudget enforces the ≤2% slot-loop budget of
// DESIGN.md §9 on the reference engine (the engine that observes every
// slot, hence the worst case). Gated behind an env var together with the
// JSON emission because a trustworthy measurement needs a quiet machine:
//
//	BENCH_OBS_JSON=BENCH_obs.json go test -run TestObsOverheadWithinBudget .
func TestObsOverheadWithinBudget(t *testing.T) {
	path := os.Getenv("BENCH_OBS_JSON")
	if path == "" {
		t.Skip("set BENCH_OBS_JSON=<path> to measure overhead and emit the benchmark record")
	}
	refOff, refOn, refPct := obsOverheadPct(sim.EngineReference)
	kerOff, kerOn, kerPct := obsOverheadPct(sim.EngineKernel)
	const budgetPct = 2.0
	if refPct > budgetPct {
		t.Errorf("reference engine metrics overhead %.2f%% exceeds %.0f%% budget (%d → %d ns/op)",
			refPct, budgetPct, refOff, refOn)
	}
	rec := struct {
		Benchmark           string  `json:"benchmark"`
		Config              string  `json:"config"`
		SlotsPerOp          int64   `json:"slots_per_op"`
		BudgetPct           float64 `json:"budget_pct"`
		ReferenceOffNsPerOp int64   `json:"reference_metrics_off_ns_per_op"`
		ReferenceOnNsPerOp  int64   `json:"reference_metrics_on_ns_per_op"`
		ReferenceOverhead   float64 `json:"reference_overhead_pct"`
		KernelOffNsPerOp    int64   `json:"kernel_metrics_off_ns_per_op"`
		KernelOnNsPerOp     int64   `json:"kernel_metrics_on_ns_per_op"`
		KernelOverhead      float64 `json:"kernel_overhead_pct"`
		GoMaxProcs          int     `json:"gomaxprocs"`
		GoVersion           string  `json:"go_version"`
	}{
		Benchmark:           "BenchmarkObsOverhead",
		Config:              "greedy-FI (fig3a policy family), Weibull(40,3), Bernoulli(0.1,1) recharge, K=1000",
		SlotsPerOp:          1_000_000,
		BudgetPct:           budgetPct,
		ReferenceOffNsPerOp: refOff,
		ReferenceOnNsPerOp:  refOn,
		ReferenceOverhead:   refPct,
		KernelOffNsPerOp:    kerOff,
		KernelOnNsPerOp:     kerOn,
		KernelOverhead:      kerPct,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		GoVersion:           runtime.Version(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("metrics overhead: reference %.2f%% (%d → %d ns/op), kernel %.2f%% (%d → %d ns/op)",
		refPct, refOff, refOn, kerPct, kerOff, kerOn)
}
