package eventcap_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"eventcap/internal/sim"
)

// benchObs measures one engine's slot loop with metrics collection on or
// off, on the same sparse-activation configuration as BENCH_kernel (the
// regime where per-slot overhead is most visible for the reference
// engine, and where the kernel's awake slots are rarest).
func benchObs(b *testing.B, engine sim.Engine, metrics bool) {
	// The config (and its greedy-FI policy solve, which dwarfs a single
	// run) is built once outside the timed loop: this benchmark measures
	// the slot loop, the thing the overhead budget is written against.
	cfg := kernelBenchConfig(b, engine, 1_000_000, 1)
	cfg.Metrics = metrics
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("benchmark run saw no events")
		}
		if metrics && res.Metrics == nil {
			b.Fatal("metrics requested but not collected")
		}
	}
}

// BenchmarkObsOverhead quantifies the cost of Config.Metrics on both
// engines (slots/op is 1e6). The contract asserted by
// TestObsOverheadWithinBudget and recorded in BENCH_obs.json is that
// enabling collection costs at most a few percent of slot throughput.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("reference/metrics=off", func(b *testing.B) { benchObs(b, sim.EngineReference, false) })
	b.Run("reference/metrics=on", func(b *testing.B) { benchObs(b, sim.EngineReference, true) })
	b.Run("kernel/metrics=off", func(b *testing.B) { benchObs(b, sim.EngineKernel, false) })
	b.Run("kernel/metrics=on", func(b *testing.B) { benchObs(b, sim.EngineKernel, true) })
}

// TestObsOverheadWithinBudget enforces the ≤2% slot-loop budget of
// DESIGN.md §9 on the reference engine (the engine that observes every
// slot, hence the worst case), using the interleaved-rounds methodology
// of bench_rounds_test.go: the median round is the claim, and the
// measured noise floor bounds what the machine can fake in either
// direction. Gated behind an env var together with the JSON emission
// because a trustworthy measurement needs a quiet machine:
//
//	BENCH_OBS_JSON=BENCH_obs.json go test -run TestObsOverheadWithinBudget .
func TestObsOverheadWithinBudget(t *testing.T) {
	path := os.Getenv("BENCH_OBS_JSON")
	if path == "" {
		t.Skip("set BENCH_OBS_JSON=<path> to measure overhead and emit the benchmark record")
	}
	const rounds = 5
	const budgetPct = 2.0
	ref := measureOverhead(rounds,
		func(b *testing.B) { benchObs(b, sim.EngineReference, false) },
		func(b *testing.B) { benchObs(b, sim.EngineReference, true) })
	ker := measureOverhead(rounds,
		func(b *testing.B) { benchObs(b, sim.EngineKernel, false) },
		func(b *testing.B) { benchObs(b, sim.EngineKernel, true) })
	if !ref.withinBudget(budgetPct) {
		t.Errorf("reference engine metrics overhead %.2f%% exceeds %.0f%% budget + %.2f%% noise floor (%d → %d ns/op)",
			ref.MedianOverheadPct, budgetPct, ref.NoiseFloorPct, ref.MedianOffNsPerOp, ref.MedianOnNsPerOp)
	}
	rec := struct {
		Benchmark  string              `json:"benchmark"`
		Config     string              `json:"config"`
		SlotsPerOp int64               `json:"slots_per_op"`
		BudgetPct  float64             `json:"budget_pct"`
		Rounds     int                 `json:"rounds"`
		Reference  overheadMeasurement `json:"reference"`
		Kernel     overheadMeasurement `json:"kernel"`
		GoMaxProcs int                 `json:"gomaxprocs"`
		GoVersion  string              `json:"go_version"`
	}{
		Benchmark:  "BenchmarkObsOverhead",
		Config:     "greedy-FI (fig3a policy family), Weibull(40,3), Bernoulli(0.1,1) recharge, K=1000",
		SlotsPerOp: 1_000_000,
		BudgetPct:  budgetPct,
		Rounds:     rounds,
		Reference:  ref,
		Kernel:     ker,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("metrics overhead: reference median %.2f%% (noise floor %.2f%%), kernel median %.2f%% (noise floor %.2f%%)",
		ref.MedianOverheadPct, ref.NoiseFloorPct, ker.MedianOverheadPct, ker.NoiseFloorPct)
}
