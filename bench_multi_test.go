package eventcap_test

import (
	"encoding/json"
	"os"
	"runtime"
	"runtime/debug"
	"testing"

	"eventcap/internal/energy"
	"eventcap/internal/sim"
)

// multiBenchConfig is the fleet benchmark workload: the fig6 M-FI
// construction (round-robin fleet, one shared full-information policy
// computed at the aggregate harvest rate N·e) at the energy-scarce
// point the repo's benchmark family targets. The single-sensor
// kernelBenchConfig policy is GreedyFI at e=0.1, which IS the M-FI
// policy for a fleet whose aggregate budget is 0.1 — so the fleet
// config just splits that harvest across N=8 batteries (per-sensor
// Bernoulli(0.1, 0.125)) and rotates the in-charge sensor. Sparsity
// again comes from the harvest rate: the shared policy sleeps through
// ~90% of each inter-arrival interval, the regime the fleet kernel's
// shared sleep runs exploit.
func multiBenchConfig(b testing.TB, engine sim.Engine, slots int64, seed uint64) sim.Config {
	b.Helper()
	cfg := kernelBenchConfig(b, engine, slots, seed)
	cfg.N = multiBenchSensors
	cfg.Mode = sim.ModeRoundRobin
	cfg.NewRecharge = func() energy.Recharge {
		r, _ := energy.NewBernoulli(0.1, 0.125)
		return r
	}
	return cfg
}

const (
	multiBenchSensors = 8   // N: fig6's largest fleet
	multiMinSpeedup   = 3.0 // gate: fleet kernel vs reference fleet loop
)

// benchMulti times sim.Run alone on the fleet workload, mirroring
// benchEngine: config construction (including the GreedyFI
// optimization) stays outside the measured region, and each iteration
// reseeds so the engine cannot amortize across iterations.
func benchMulti(b *testing.B, engine sim.Engine) {
	cfg := multiBenchConfig(b, engine, 1_000_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("benchmark run saw no events")
		}
	}
}

// BenchmarkMultiSensorSlotsPerOp measures the fleet kernel on the
// fig6-shaped configuration (slots/op is 1e6 shared slots; each slot
// advances all 8 sensors, so ns/op / 1e6 is the per-fleet-slot cost).
func BenchmarkMultiSensorSlotsPerOp(b *testing.B) { benchMulti(b, sim.EngineKernel) }

// BenchmarkMultiSensorReferenceSlotsPerOp is the reference-engine
// baseline on the identical fleet configuration; the ratio is the
// fleet-kernel speedup recorded in BENCH_multi.json.
func BenchmarkMultiSensorReferenceSlotsPerOp(b *testing.B) { benchMulti(b, sim.EngineReference) }

// TestMultiKernelSteadyStateAllocs checks the fleet kernel's hot loop
// allocates nothing: growing the run from 1 slot to 1M slots must not
// change the allocation count (all allocations — the dense battery
// slab, per-sensor recharge streams, the per-sensor stats slice — are
// per-run setup). GC is disabled during the measurement: a fleet run's
// setup is ~1MB of binomial fast-forward tables, enough for a GC cycle
// to start mid-measurement and charge its own bookkeeping (one mark
// worker spawn) to the run.
func TestMultiKernelSteadyStateAllocs(t *testing.T) {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	run := func(slots int64) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := sim.Run(multiBenchConfig(t, sim.EngineKernel, slots, 1)); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := run(1), run(1_000_000)
	if long > short {
		t.Errorf("fleet kernel loop allocates: %v allocs at 1 slot, %v at 1M slots", short, long)
	}
}

// TestEmitBenchMultiJSON regenerates BENCH_multi.json and enforces the
// fleet kernel's performance gate: on the fig6-shaped workload (N=8
// round-robin, Weibull(40,3), Bernoulli recharge) the compiled fleet
// kernel must deliver at least 3x the reference loop's slots/sec,
// measured with the interleaved-rounds median/noise-floor protocol of
// bench_batch_test.go. Gated behind an env var so normal test runs
// stay fast:
//
//	BENCH_MULTI_JSON=BENCH_multi.json go test -run TestEmitBenchMultiJSON .
func TestEmitBenchMultiJSON(t *testing.T) {
	path := os.Getenv("BENCH_MULTI_JSON")
	if path == "" {
		t.Skip("set BENCH_MULTI_JSON=<path> to emit the benchmark record")
	}
	m := measureSpeedup(3,
		func(b *testing.B) { benchMulti(b, sim.EngineReference) },
		func(b *testing.B) { benchMulti(b, sim.EngineKernel) },
	)
	if !m.meetsSpeedup(multiMinSpeedup) {
		t.Errorf("fleet kernel speedup gate failed: median %.2fx (noise floor %.1f%%), want >= %.0fx",
			m.MedianSpeedup, m.NoiseFloorPct, multiMinSpeedup)
	}

	// GC off for the alloc comparison, as in TestMultiKernelSteadyStateAllocs.
	const slots = int64(1_000_000)
	prevGC := debug.SetGCPercent(-1)
	loopAllocs := testing.AllocsPerRun(3, func() {
		sim.Run(multiBenchConfig(t, sim.EngineKernel, slots, 1))
	}) - testing.AllocsPerRun(3, func() {
		sim.Run(multiBenchConfig(t, sim.EngineKernel, 1, 1))
	})
	debug.SetGCPercent(prevGC)
	if loopAllocs > 0 {
		t.Errorf("fleet kernel steady-state loop allocs = %v, want 0", loopAllocs)
	}

	rec := struct {
		Benchmark             string             `json:"benchmark"`
		Config                string             `json:"config"`
		Sensors               int                `json:"sensors"`
		SlotsPerOp            int64              `json:"slots_per_op"`
		Measurement           speedupMeasurement `json:"measurement"`
		KernelSlotsPerSec     float64            `json:"kernel_slots_per_sec"`
		ReferenceSlotsPerSec  float64            `json:"reference_slots_per_sec"`
		MinSpeedup            float64            `json:"min_speedup"`
		SteadyStateLoopAllocs float64            `json:"kernel_steady_state_loop_allocs"`
		GoMaxProcs            int                `json:"gomaxprocs"`
		GoVersion             string             `json:"go_version"`
	}{
		Benchmark:             "BenchmarkMultiSensorSlotsPerOp",
		Config:                "M-FI (fig6 policy family at aggregate rate 0.1), N=8 round-robin, Weibull(40,3), Bernoulli(0.1,0.125) recharge per sensor, K=1000",
		Sensors:               multiBenchSensors,
		SlotsPerOp:            slots,
		Measurement:           m,
		KernelSlotsPerSec:     float64(slots) * 1e9 / float64(m.MedianBatchNsPerOp),
		ReferenceSlotsPerSec:  float64(slots) * 1e9 / float64(m.MedianSequentialNsPerOp),
		MinSpeedup:            multiMinSpeedup,
		SteadyStateLoopAllocs: loopAllocs,
		GoMaxProcs:            runtime.GOMAXPROCS(0),
		GoVersion:             runtime.Version(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("fleet kernel %.2fx vs reference (noise floor %.1f%%), %.0f steady-state loop allocs",
		m.MedianSpeedup, m.NoiseFloorPct, loopAllocs)
}
