package eventcap_test

import (
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/experiments"
	"eventcap/internal/mdp"
	"eventcap/internal/sim"
)

// One benchmark per paper figure: each regenerates the figure's series
// (in reduced "quick" form so a bench iteration stays in seconds; run
// cmd/experiments for the full-size reproduction) and reports the
// wall-clock cost of the reproduction pipeline itself.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	for i := 0; i < b.N; i++ {
		opts := experiments.Options{Quick: true, Seed: uint64(i + 1), Slots: 50_000}
		table, err := exp.Run(opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(table.Series) == 0 || len(table.X) == 0 {
			b.Fatalf("experiment %s produced an empty table", id)
		}
	}
}

func BenchmarkFig3aAsymptoticFI(b *testing.B)            { benchExperiment(b, "fig3a") }
func BenchmarkFig3bAsymptoticPI(b *testing.B)            { benchExperiment(b, "fig3b") }
func BenchmarkFig4aPolicyComparisonWeibull(b *testing.B) { benchExperiment(b, "fig4a") }
func BenchmarkFig4bPolicyComparisonPareto(b *testing.B)  { benchExperiment(b, "fig4b") }
func BenchmarkFig5aEBCW(b *testing.B)                    { benchExperiment(b, "fig5a") }
func BenchmarkFig5bEBCW(b *testing.B)                    { benchExperiment(b, "fig5b") }
func BenchmarkFig6aMultiSensorN(b *testing.B)            { benchExperiment(b, "fig6a") }
func BenchmarkFig6bMultiSensorC(b *testing.B)            { benchExperiment(b, "fig6b") }

// Ablation benches (DESIGN.md section 6).

func BenchmarkAblationGreedyVsLP(b *testing.B)    { benchExperiment(b, "ablation-lp") }
func BenchmarkAblationWindowRefine(b *testing.B)  { benchExperiment(b, "ablation-windows") }
func BenchmarkAblationPOMDPGrowth(b *testing.B)   { benchExperiment(b, "ablation-pomdp") }
func BenchmarkAblationRecharge(b *testing.B)      { benchExperiment(b, "ablation-recharge") }
func BenchmarkAblationLoadBalance(b *testing.B)   { benchExperiment(b, "ablation-loadbalance") }
func BenchmarkAblationPoissonEvents(b *testing.B) { benchExperiment(b, "ablation-poisson") }

// Component micro-benchmarks: the costs a user of the library actually
// pays — policy computation and simulation throughput.

func BenchmarkPolicyGreedyFI(b *testing.B) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GreedyFI(d, 0.5, p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyOptimizeClustering(b *testing.B) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimizeClustering(d, 0.5, p, core.ClusteringOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPolicyOptimizeEBCW(b *testing.B) {
	p := core.DefaultParams()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimizeEBCW(0.7, 0.6, 1, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSlotsPerOp measures raw reference-engine throughput
// (slots/op is Slots; see ns/op for per-slot cost). It pins
// EngineReference so it keeps tracking the interpreted per-slot loop;
// BenchmarkKernelSlotsPerOp in bench_kernel_test.go covers the compiled
// kernel on the same configuration.
func BenchmarkSimulatorSlotsPerOp(b *testing.B) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	fi, err := core.GreedyFI(d, 0.5, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Dist:   d,
			Params: p,
			NewRecharge: func() energy.Recharge {
				r, _ := energy.NewBernoulli(0.5, 1)
				return r
			},
			NewPolicy:  func(int) sim.Policy { return &sim.VectorFI{Vector: fi.Policy} },
			BatteryCap: 1000,
			Slots:      1_000_000,
			Seed:       uint64(i + 1),
			Engine:     sim.EngineReference,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimulatorMultiSensor8(b *testing.B) {
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	fi, err := core.GreedyFI(d, 0.8, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := sim.Run(sim.Config{
			Dist:   d,
			Params: p,
			NewRecharge: func() energy.Recharge {
				r, _ := energy.NewBernoulli(0.1, 1)
				return r
			},
			NewPolicy:  func(int) sim.Policy { return &sim.VectorFI{Vector: fi.Policy} },
			N:          8,
			Mode:       sim.ModeRoundRobin,
			BatteryCap: 1000,
			Slots:      500_000,
			Seed:       uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPOMDPExact shows the cost wall of the exact approach the paper
// proves intractable: doubling the horizon multiplies the reachable
// information states.
func BenchmarkPOMDPExact(b *testing.B) {
	alpha := []float64{0.1, 0.2, 0.3, 0.25, 0.15}
	for i := 0; i < b.N; i++ {
		p, err := mdp.NewPOMDP(alpha, 1, 2, 8, 1, 12)
		if err != nil {
			b.Fatal(err)
		}
		_ = p.SolveExact()
	}
}

func BenchmarkAblationAdaptiveLearning(b *testing.B) { benchExperiment(b, "ablation-adaptive") }
func BenchmarkAblationFaultResilience(b *testing.B)  { benchExperiment(b, "ablation-faults") }

func BenchmarkAblationMultiPoI(b *testing.B) { benchExperiment(b, "ablation-multipoi") }
