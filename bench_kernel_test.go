package eventcap_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"eventcap/internal/core"
	"eventcap/internal/dist"
	"eventcap/internal/energy"
	"eventcap/internal/sim"
)

// kernelBenchConfig is the sparse-activation workload both engines are
// measured on: the fig3a greedy-FI policy on Weibull(40,3) with a large
// battery, at the energy-scarce rate e=0.1 where the optimal policy
// sleeps through ~90% of each inter-arrival interval — exactly the regime
// the slot-skipping kernel targets. (The duty cycle of an
// energy-balanced policy is ~e/δ1 regardless of the workload's mean, so
// sparsity comes from the recharge rate, not the distribution.)
func kernelBenchConfig(b testing.TB, engine sim.Engine, slots int64, seed uint64) sim.Config {
	b.Helper()
	d, err := dist.NewWeibull(40, 3)
	if err != nil {
		b.Fatal(err)
	}
	p := core.DefaultParams()
	fi, err := core.GreedyFI(d, 0.1, p)
	if err != nil {
		b.Fatal(err)
	}
	return sim.Config{
		Dist:   d,
		Params: p,
		NewRecharge: func() energy.Recharge {
			r, _ := energy.NewBernoulli(0.1, 1)
			return r
		},
		NewPolicy:  func(int) sim.Policy { return &sim.VectorFI{Vector: fi.Policy} },
		BatteryCap: 1000,
		Slots:      slots,
		Seed:       seed,
		Engine:     engine,
	}
}

// benchEngine times sim.Run alone: the config (including the GreedyFI
// policy optimization) is built once outside the measured region, so
// ns/op and allocs/op cover only the engine — per-run compile and table
// setup plus the slot loop. Each iteration reseeds so the engine cannot
// amortize across iterations.
func benchEngine(b *testing.B, engine sim.Engine) {
	cfg := kernelBenchConfig(b, engine, 1_000_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		res, err := sim.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("benchmark run saw no events")
		}
	}
}

// BenchmarkKernelSlotsPerOp measures the compiled kernel on the sparse
// configuration (slots/op is 1e6; ns/op / 1e6 is the per-slot cost).
// BenchmarkKernelReferenceSlotsPerOp runs the reference engine on the
// identical configuration; their ratio is the kernel speedup recorded in
// BENCH_kernel.json.
func BenchmarkKernelSlotsPerOp(b *testing.B) { benchEngine(b, sim.EngineKernel) }

// BenchmarkKernelReferenceSlotsPerOp is the reference-engine baseline on
// the same sparse configuration as BenchmarkKernelSlotsPerOp.
func BenchmarkKernelReferenceSlotsPerOp(b *testing.B) { benchEngine(b, sim.EngineReference) }

// TestKernelSteadyStateAllocs checks the kernel's hot loop allocates
// nothing: growing the run from 1 slot to 1M slots must not change the
// allocation count (all allocations are per-run setup).
func TestKernelSteadyStateAllocs(t *testing.T) {
	run := func(slots int64) float64 {
		return testing.AllocsPerRun(3, func() {
			if _, err := sim.Run(kernelBenchConfig(t, sim.EngineKernel, slots, 1)); err != nil {
				t.Fatal(err)
			}
		})
	}
	short, long := run(1), run(1_000_000)
	if long > short {
		t.Errorf("kernel loop allocates: %v allocs at 1 slot, %v at 1M slots", short, long)
	}
}

// TestEmitBenchKernelJSON regenerates BENCH_kernel.json: kernel vs
// reference throughput on the sparse-activation configuration plus the
// steady-state allocation count. Gated behind an env var so normal test
// runs stay fast:
//
//	BENCH_KERNEL_JSON=BENCH_kernel.json go test -run TestEmitBenchKernelJSON .
func TestEmitBenchKernelJSON(t *testing.T) {
	path := os.Getenv("BENCH_KERNEL_JSON")
	if path == "" {
		t.Skip("set BENCH_KERNEL_JSON=<path> to emit the benchmark record")
	}
	kernel := testing.Benchmark(func(b *testing.B) { benchEngine(b, sim.EngineKernel) })
	reference := testing.Benchmark(func(b *testing.B) { benchEngine(b, sim.EngineReference) })
	const slots = 1_000_000
	loopAllocs := testing.AllocsPerRun(3, func() {
		sim.Run(kernelBenchConfig(t, sim.EngineKernel, slots, 1))
	}) - testing.AllocsPerRun(3, func() {
		sim.Run(kernelBenchConfig(t, sim.EngineKernel, 1, 1))
	})
	rec := struct {
		Benchmark             string  `json:"benchmark"`
		Config                string  `json:"config"`
		SlotsPerOp            int64   `json:"slots_per_op"`
		KernelNsPerOp         int64   `json:"kernel_ns_per_op"`
		ReferenceNsPerOp      int64   `json:"reference_ns_per_op"`
		KernelSlotsPerSec     float64 `json:"kernel_slots_per_sec"`
		ReferenceSlotsPerSec  float64 `json:"reference_slots_per_sec"`
		Speedup               float64 `json:"speedup"`
		KernelAllocsPerOp     int64   `json:"kernel_allocs_per_op"`
		ReferenceAllocsPerOp  int64   `json:"reference_allocs_per_op"`
		SteadyStateLoopAllocs float64 `json:"kernel_steady_state_loop_allocs"`
		GoMaxProcs            int     `json:"gomaxprocs"`
		GoVersion             string  `json:"go_version"`
	}{
		Benchmark:             "BenchmarkKernelSlotsPerOp",
		Config:                "greedy-FI (fig3a policy family), Weibull(40,3), Bernoulli(0.1,1) recharge, K=1000",
		SlotsPerOp:            slots,
		KernelNsPerOp:         kernel.NsPerOp(),
		ReferenceNsPerOp:      reference.NsPerOp(),
		KernelSlotsPerSec:     slots * 1e9 / float64(kernel.NsPerOp()),
		ReferenceSlotsPerSec:  slots * 1e9 / float64(reference.NsPerOp()),
		Speedup:               float64(reference.NsPerOp()) / float64(kernel.NsPerOp()),
		KernelAllocsPerOp:     kernel.AllocsPerOp(),
		ReferenceAllocsPerOp:  reference.AllocsPerOp(),
		SteadyStateLoopAllocs: loopAllocs,
		GoMaxProcs:            runtime.GOMAXPROCS(0),
		GoVersion:             runtime.Version(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("kernel %.1f ns/op vs reference %.1f ns/op: %.2fx, steady-state loop allocs %.0f",
		float64(kernel.NsPerOp()), float64(reference.NsPerOp()), rec.Speedup, loopAllocs)
}
