package eventcap_test

import (
	"sort"
	"testing"
)

// This file is the shared methodology for paired overhead benchmarks
// (BENCH_obs.json, BENCH_trace.json). The first BENCH_obs record was
// produced by taking the minimum of five measurements per side
// independently, which let the instrumented side win the noise lottery
// and reported a negative overhead (-4.6%) — an obviously unphysical
// number. The fix is to keep the pairing: measure off/on in interleaved
// rounds, compute the overhead per round, and report the median round
// alongside an explicit noise floor, so a record says both "what the
// overhead is" and "how much the machine was wobbling while we asked".

// overheadRound is one interleaved off/on measurement pair.
type overheadRound struct {
	OffNsPerOp  int64   `json:"off_ns_per_op"`
	OnNsPerOp   int64   `json:"on_ns_per_op"`
	OverheadPct float64 `json:"overhead_pct"`
}

// overheadMeasurement summarizes ≥5 interleaved rounds of a paired
// off/on benchmark. MedianOverheadPct is the median of the per-round
// overheads (robust to a single disturbed round in either direction);
// NoiseFloorPct is the spread of the *uninstrumented* side across
// rounds, as a percentage of its median — overhead claims below the
// noise floor are indistinguishable from machine drift, so budget
// checks must allow median ≤ budget + noise floor.
type overheadMeasurement struct {
	Rounds            []overheadRound `json:"rounds"`
	MedianOffNsPerOp  int64           `json:"median_off_ns_per_op"`
	MedianOnNsPerOp   int64           `json:"median_on_ns_per_op"`
	MedianOverheadPct float64         `json:"median_overhead_pct"`
	NoiseFloorPct     float64         `json:"noise_floor_pct"`
}

func medianInt64(vs []int64) int64 {
	s := append([]int64(nil), vs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func medianFloat(vs []float64) float64 {
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// summarizeRounds computes the measurement record from raw rounds
// (split out from measureOverhead so the math is unit-testable without
// running benchmarks).
func summarizeRounds(rounds []overheadRound) overheadMeasurement {
	m := overheadMeasurement{Rounds: rounds}
	offs := make([]int64, len(rounds))
	ons := make([]int64, len(rounds))
	pcts := make([]float64, len(rounds))
	minOff, maxOff := rounds[0].OffNsPerOp, rounds[0].OffNsPerOp
	for i, r := range rounds {
		offs[i], ons[i], pcts[i] = r.OffNsPerOp, r.OnNsPerOp, r.OverheadPct
		if r.OffNsPerOp < minOff {
			minOff = r.OffNsPerOp
		}
		if r.OffNsPerOp > maxOff {
			maxOff = r.OffNsPerOp
		}
	}
	m.MedianOffNsPerOp = medianInt64(offs)
	m.MedianOnNsPerOp = medianInt64(ons)
	m.MedianOverheadPct = medianFloat(pcts)
	m.NoiseFloorPct = 100 * float64(maxOff-minOff) / float64(m.MedianOffNsPerOp)
	return m
}

// measureOverhead runs the off/on pair for the given number of
// interleaved rounds (≥5 enforced) and summarizes them.
func measureOverhead(rounds int, off, on func(b *testing.B)) overheadMeasurement {
	if rounds < 5 {
		rounds = 5
	}
	rs := make([]overheadRound, rounds)
	for i := range rs {
		offRes := testing.Benchmark(off)
		onRes := testing.Benchmark(on)
		rs[i] = overheadRound{
			OffNsPerOp:  offRes.NsPerOp(),
			OnNsPerOp:   onRes.NsPerOp(),
			OverheadPct: 100 * (float64(onRes.NsPerOp()) - float64(offRes.NsPerOp())) / float64(offRes.NsPerOp()),
		}
	}
	return summarizeRounds(rs)
}

// withinBudget is the gate all overhead records share: the median
// overhead may exceed the budget only by the measured noise floor.
func (m overheadMeasurement) withinBudget(budgetPct float64) bool {
	return m.MedianOverheadPct <= budgetPct+m.NoiseFloorPct
}

func TestSummarizeRoundsMath(t *testing.T) {
	rounds := []overheadRound{
		{OffNsPerOp: 100, OnNsPerOp: 101, OverheadPct: 1},
		{OffNsPerOp: 110, OnNsPerOp: 112, OverheadPct: 2}, // disturbed round
		{OffNsPerOp: 100, OnNsPerOp: 100, OverheadPct: 0},
		{OffNsPerOp: 102, OnNsPerOp: 103, OverheadPct: 1},
		{OffNsPerOp: 101, OnNsPerOp: 102, OverheadPct: 1},
	}
	m := summarizeRounds(rounds)
	if m.MedianOffNsPerOp != 101 || m.MedianOnNsPerOp != 102 {
		t.Errorf("medians off=%d on=%d, want 101/102", m.MedianOffNsPerOp, m.MedianOnNsPerOp)
	}
	if m.MedianOverheadPct != 1 {
		t.Errorf("median overhead %.3f, want 1", m.MedianOverheadPct)
	}
	// Off side spread 100..110 over median 101.
	if want := 100 * float64(10) / 101; m.NoiseFloorPct != want {
		t.Errorf("noise floor %.3f, want %.3f", m.NoiseFloorPct, want)
	}
	if !m.withinBudget(2) {
		t.Error("1%% median with ~10%% noise floor must pass a 2%% budget")
	}
	if (overheadMeasurement{MedianOverheadPct: 5, NoiseFloorPct: 0.5}).withinBudget(2) {
		t.Error("5%% median with 0.5%% noise floor must fail a 2%% budget")
	}
}
