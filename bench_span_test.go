package eventcap_test

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"eventcap/internal/obs"
	"eventcap/internal/sim"
)

// benchSpan measures one engine's slot loop with the phase-span tracer
// and work-unit progress attached or absent, on the same
// sparse-activation configuration as BENCH_obs (the regime where
// per-slot costs are most visible). Spans wrap phases, never slots, so
// this benchmark is the direct check that the design holds: the per-run
// span cost must be constant, not O(slots).
func benchSpan(b *testing.B, engine sim.Engine, spans bool) {
	cfg := kernelBenchConfig(b, engine, 1_000_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = uint64(i + 1)
		var root *obs.Span
		if spans {
			root = obs.BeginSpan("bench")
			cfg.Span = root
			cfg.Progress = obs.NewProgress()
		}
		res, err := sim.Run(cfg)
		root.End()
		if err != nil {
			b.Fatal(err)
		}
		if res.Events == 0 {
			b.Fatal("benchmark run saw no events")
		}
	}
}

// BenchmarkSpanOverhead quantifies the cost of Config.Span +
// Config.Progress on both engines (slots/op is 1e6). The contract
// asserted by TestSpanOverheadWithinBudget and recorded in
// BENCH_span.json is the same ≤2% slot-loop budget as Config.Metrics.
func BenchmarkSpanOverhead(b *testing.B) {
	b.Run("reference/spans=off", func(b *testing.B) { benchSpan(b, sim.EngineReference, false) })
	b.Run("reference/spans=on", func(b *testing.B) { benchSpan(b, sim.EngineReference, true) })
	b.Run("kernel/spans=off", func(b *testing.B) { benchSpan(b, sim.EngineKernel, false) })
	b.Run("kernel/spans=on", func(b *testing.B) { benchSpan(b, sim.EngineKernel, true) })
}

// TestSpanOverheadWithinBudget enforces the ≤2% slot-loop budget of
// DESIGN.md §9 on the phase-span tracer, with the interleaved-rounds
// methodology of bench_rounds_test.go. Gated behind an env var together
// with the JSON emission because a trustworthy measurement needs a
// quiet machine:
//
//	BENCH_SPAN_JSON=BENCH_span.json go test -run TestSpanOverheadWithinBudget .
func TestSpanOverheadWithinBudget(t *testing.T) {
	path := os.Getenv("BENCH_SPAN_JSON")
	if path == "" {
		t.Skip("set BENCH_SPAN_JSON=<path> to measure overhead and emit the benchmark record")
	}
	const rounds = 5
	const budgetPct = 2.0
	ref := measureOverhead(rounds,
		func(b *testing.B) { benchSpan(b, sim.EngineReference, false) },
		func(b *testing.B) { benchSpan(b, sim.EngineReference, true) })
	ker := measureOverhead(rounds,
		func(b *testing.B) { benchSpan(b, sim.EngineKernel, false) },
		func(b *testing.B) { benchSpan(b, sim.EngineKernel, true) })
	if !ref.withinBudget(budgetPct) {
		t.Errorf("reference engine span overhead %.2f%% exceeds %.0f%% budget + %.2f%% noise floor (%d → %d ns/op)",
			ref.MedianOverheadPct, budgetPct, ref.NoiseFloorPct, ref.MedianOffNsPerOp, ref.MedianOnNsPerOp)
	}
	if !ker.withinBudget(budgetPct) {
		t.Errorf("kernel engine span overhead %.2f%% exceeds %.0f%% budget + %.2f%% noise floor (%d → %d ns/op)",
			ker.MedianOverheadPct, budgetPct, ker.NoiseFloorPct, ker.MedianOffNsPerOp, ker.MedianOnNsPerOp)
	}
	rec := struct {
		Benchmark  string              `json:"benchmark"`
		Config     string              `json:"config"`
		SlotsPerOp int64               `json:"slots_per_op"`
		BudgetPct  float64             `json:"budget_pct"`
		Rounds     int                 `json:"rounds"`
		Reference  overheadMeasurement `json:"reference"`
		Kernel     overheadMeasurement `json:"kernel"`
		GoMaxProcs int                 `json:"gomaxprocs"`
		GoVersion  string              `json:"go_version"`
	}{
		Benchmark:  "BenchmarkSpanOverhead",
		Config:     "greedy-FI (fig3a policy family), Weibull(40,3), Bernoulli(0.1,1) recharge, K=1000",
		SlotsPerOp: 1_000_000,
		BudgetPct:  budgetPct,
		Rounds:     rounds,
		Reference:  ref,
		Kernel:     ker,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("span overhead: reference median %.2f%% (noise floor %.2f%%), kernel median %.2f%% (noise floor %.2f%%)",
		ref.MedianOverheadPct, ref.NoiseFloorPct, ker.MedianOverheadPct, ker.NoiseFloorPct)
}
